(* The GRANII command-line interface: inspect the offline compilation stage
   and run the online selection stage from a shell. *)

open Cmdliner
open Granii_core
module G = Granii_graph
module Mp = Granii_mp
module Sys_ = Granii_systems
module Obs = Granii_obs.Obs

(* ---- telemetry plumbing shared by select and stats ---- *)

let trace_file_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:
             "Write a trace of the run to $(docv): Chrome trace_event JSON \
              (load in chrome://tracing or Perfetto), or folded flamegraph \
              lines when $(docv) ends in $(b,.folded).")

let metrics_file_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:
             "Write the metrics registry to $(docv): JSON, or Prometheus \
              text exposition format when $(docv) ends in $(b,.prom).")

let journal_file_arg =
  Arg.(value & opt (some string) None
       & info [ "journal" ] ~docv:"FILE"
           ~doc:
             "Attach the production event journal (lock-free bounded rings; \
              step executions, plan-cache traffic, calibration swaps, \
              backpressure, SLO breaches) and drain it to $(docv) as JSONL \
              after the run.")

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc s)

let obs_of_flags ~trace_file ~metrics_file ~journal_file =
  if trace_file = None && metrics_file = None && journal_file = None then
    Obs.disabled
  else
    Obs.create ~trace:(trace_file <> None) ~journal:(journal_file <> None) ()

let print_journal_summary ?(tail = 10) obs =
  match obs.Obs.journal with
  | None -> ()
  | Some j when Obs.Journal.total j = 0 -> ()
  | Some j ->
      Printf.printf "journal (%d events, %d dropped by the bounded rings):\n"
        (Obs.Journal.total j) (Obs.Journal.dropped j);
      List.iter
        (fun (kind, count) -> Printf.printf "  %-22s %8d\n" kind count)
        (Obs.Journal.kind_counts j);
      let entries = Obs.Journal.entries j in
      let n = List.length entries in
      let shown = min tail n in
      Printf.printf "  last %d event%s:\n" shown (if shown = 1 then "" else "s");
      List.iteri
        (fun i e ->
          if i >= n - shown then
            Format.printf "    %a@." Obs.Journal.pp_entry e)
        entries;
      print_newline ()

let export_telemetry obs ~trace_file ~metrics_file ~journal_file =
  (match (trace_file, obs.Obs.trace) with
  | Some path, Some t ->
      write_file path
        (if Filename.check_suffix path ".folded" then Obs.Trace.to_folded t
         else Obs.Trace.to_chrome_json t);
      Printf.printf "wrote %d spans to %s\n" (Obs.Trace.count t) path
  | _ -> ());
  (match (metrics_file, obs.Obs.metrics) with
  | Some path, Some m ->
      write_file path
        (if Filename.check_suffix path ".prom" then Obs.Metrics.to_prometheus m
         else Obs.Metrics.to_json m);
      Printf.printf "wrote metrics to %s\n" path
  | _ -> ());
  match (journal_file, obs.Obs.journal) with
  | Some path, Some j ->
      write_file path (Obs.Journal.to_jsonl j);
      Printf.printf "wrote %d journal events to %s (%d dropped)\n"
        (List.length (Obs.Journal.entries j))
        path (Obs.Journal.dropped j)
  | _ -> ()

(* ---- shared argument converters ---- *)

let model_arg =
  let parse s =
    match Mp.Mp_models.find s with
    | m -> Ok m
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown model %s (try: %s)" s
                (String.concat ", "
                   (List.map (fun m -> m.Mp.Mp_ast.name) Mp.Mp_models.all))))
  in
  let print ppf (m : Mp.Mp_ast.model) = Format.fprintf ppf "%s" m.Mp.Mp_ast.name in
  Arg.conv (parse, print)

let hw_arg =
  let parse s =
    match Granii_hw.Hw_profile.find s with
    | p -> Ok p
    | exception Not_found -> Error (`Msg ("unknown hardware profile " ^ s))
  in
  Arg.conv (parse, fun ppf p -> Format.fprintf ppf "%s" p.Granii_hw.Hw_profile.name)

let graph_arg =
  let parse s =
    match G.Datasets.find s with
    | d -> Ok (G.Datasets.load d)
    | exception Not_found -> (
        (* also accept generator shorthands: rmat:scale:ef, grid:r:c, er:n:deg *)
        match String.split_on_char ':' s with
        | [ "rmat"; scale; ef ] ->
            Ok
              (G.Generators.rmat ~scale:(int_of_string scale)
                 ~edge_factor:(int_of_string ef) ())
        | [ "grid"; r; c ] ->
            Ok (G.Generators.grid2d ~rows:(int_of_string r) ~cols:(int_of_string c) ())
        | [ "er"; n; deg ] ->
            Ok
              (G.Generators.erdos_renyi ~n:(int_of_string n)
                 ~avg_degree:(float_of_string deg) ())
        | _ ->
            Error
              (`Msg
                 (s
                ^ ": expected a dataset key (RD CA MC BL AU OP) or \
                   rmat:<scale>:<ef> | grid:<r>:<c> | er:<n>:<deg>")))
  in
  Arg.conv (parse, fun ppf g -> Format.fprintf ppf "%s" g.G.Graph.name)

let model_pos = Arg.(required & pos 0 (some model_arg) None & info [] ~docv:"MODEL")

let compile_model ?obs (m : Mp.Mp_ast.model) ~binned =
  let low = Mp.Lower.lower m in
  let compiled, stats =
    Granii.compile ?obs ~name:m.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned)
      low.Mp.Lower.ir
  in
  (low, compiled, stats)

(* ---- commands ---- *)

let models_cmd =
  let run () =
    List.iter
      (fun (m : Mp.Mp_ast.model) ->
        let low = Mp.Lower.lower m in
        Format.printf "%-6s %a@." m.Mp.Mp_ast.name Matrix_ir.pp low.Mp.Lower.ir)
      Mp.Mp_models.all
  in
  Cmd.v (Cmd.info "models" ~doc:"List the built-in GNN models and their matrix IR")
    Term.(const run $ const ())

let datasets_cmd =
  let run () =
    Printf.printf "%-4s %-18s %10s %12s %10s   %s\n" "key" "paper graph" "nodes"
      "nnz" "avg deg" "(stand-in family)";
    List.iter
      (fun (d : G.Datasets.t) ->
        let g = G.Datasets.load d in
        Printf.printf "%-4s %-18s %10d %12d %10.1f   %s\n" d.G.Datasets.key
          d.G.Datasets.paper_name (G.Graph.n_nodes g) (G.Graph.n_edges g)
          (G.Graph.avg_degree g) d.G.Datasets.family)
      G.Datasets.all
  in
  Cmd.v
    (Cmd.info "datasets" ~doc:"List the evaluation graph suite (Table II stand-ins)")
    Term.(const run $ const ())

let enumerate_cmd =
  let run model =
    let low, compiled, stats = compile_model model ~binned:false in
    Format.printf "IR: %a@." Matrix_ir.pp low.Mp.Lower.ir;
    Printf.printf
      "rewrite variants: %d, enumerated: %d, pruned: %d, promoted: %d\n\n"
      stats.Granii.n_variants stats.Granii.n_enumerated stats.Granii.n_pruned
      stats.Granii.n_promoted;
    List.iter
      (fun (c : Codegen.ccand) ->
        Printf.printf "%s  [%s]\n  %s\n" c.Codegen.plan.Plan.name
          (String.concat ", "
             (List.map (Format.asprintf "%a" Dim.pp_scenario) c.Codegen.scenarios))
          (String.concat " ; "
             (List.map (Format.asprintf "%a" Primitive.pp)
                (Plan.primitives c.Codegen.plan))))
      compiled.Codegen.candidates
  in
  Cmd.v
    (Cmd.info "enumerate"
       ~doc:"Enumerate and prune a model's primitive compositions (offline stage)")
    Term.(const run $ model_pos)

let codegen_cmd =
  let run model =
    let _, compiled, _ = compile_model model ~binned:false in
    Format.printf "%a@." Codegen.pp compiled
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Show the generated conditional dispatch (Fig. 7 pseudocode)")
    Term.(const run $ model_pos)

let select_cmd =
  let graph =
    Arg.(value & opt graph_arg (G.Datasets.load G.Datasets.reddit)
         & info [ "graph"; "g" ] ~docv:"GRAPH" ~doc:"Input graph (dataset key or generator spec).")
  in
  let k_in = Arg.(value & opt int 256 & info [ "kin" ] ~doc:"Input embedding size.") in
  let k_out = Arg.(value & opt int 256 & info [ "kout" ] ~doc:"Output embedding size.") in
  let hw =
    Arg.(value & opt hw_arg Granii_hw.Hw_profile.a100
         & info [ "hw" ] ~doc:"Target hardware profile (CPU, A100, H100).")
  in
  let iterations =
    Arg.(value & opt int 100 & info [ "iterations"; "n" ] ~doc:"Execution horizon.")
  in
  let system =
    Arg.(value & opt string "dgl" & info [ "system" ] ~doc:"Host system (wisegraph or dgl).")
  in
  let analytic =
    Arg.(value & flag
         & info [ "analytic" ] ~doc:"Use the analytic cost model instead of training GBRTs.")
  in
  let threads =
    Arg.(value & opt int 1
         & info [ "threads"; "t" ] ~docv:"N"
             ~doc:"Thread count of the execution engine the selection targets \
                   (fed to the featurizer and the cost models).")
  in
  let env_of graph k_in k_out =
    { Dim.n = G.Graph.n_nodes graph;
      nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
      k_in;
      k_out }
  in
  let models_file =
    Arg.(value & opt (some string) None
         & info [ "models-file" ] ~docv:"FILE"
             ~doc:"Load cost models saved by $(b,granii train-costmodel) \
                   instead of retraining.")
  in
  let auto_calibrate =
    Arg.(value & flag
         & info [ "auto-calibrate" ]
             ~doc:
               "Re-anchor the target profile's machine constants with a \
                bounded micro-probe of this host (about 200 ms) before \
                building the cost model.")
  in
  let execute =
    Arg.(value & opt (some int) None
         & info [ "execute" ] ~docv:"N"
             ~doc:
               "After ranking, actually run the selected plan $(docv) times \
                on this machine's CPU (random features) and report measured \
                times plus per-iteration GC allocation.")
  in
  let workspace =
    Arg.(value & flag
         & info [ "workspace" ]
             ~doc:
               "With $(b,--execute), run iterations out of a buffer-reuse \
                workspace arena: outputs are bitwise identical, steady-state \
                allocation drops to zero.")
  in
  let engine_spec =
    Arg.(value & opt (some string) None
         & info [ "engine" ] ~docv:"SPEC"
             ~doc:
               "Execution-engine configuration for $(b,--execute), as \
                comma-separated key=value pairs parsed by \
                $(b,Engine.config_of_string): $(b,threads)=N, \
                $(b,workspace)=on|off, $(b,cache)=on|off, \
                $(b,locality)=<strategy>+<format>, \
                $(b,intermediates)=keep|drop, \
                $(b,calibration)=off|affine|refit. Omitted keys keep their \
                defaults; a $(b,locality) key forces the layout (otherwise \
                selection's choice is used). Illegal combinations are \
                rejected up front with a typed error. $(b,--engine show) \
                prints the engine the run would use and exits.")
  in
  let reorder =
    Arg.(value & opt string "auto"
         & info [ "reorder" ] ~docv:"STRATEGY"
             ~doc:
               "Vertex ordering: $(b,auto) (cost model decides), \
                $(b,identity), $(b,degree), $(b,bfs) or $(b,rcm).")
  in
  let format_ =
    Arg.(value & opt string "auto"
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:
               "Sparse format for the g-kernels: $(b,auto) (cost model \
                decides), $(b,csr) (forces the legacy path), $(b,hybrid) \
                (ELL slab + CSR tail), $(b,bsr) (8x8 block-sparse dense \
                tiles) or $(b,cbm) (neighbor-dedup delta rows).")
  in
  let run model graph k_in k_out profile iterations system analytic auto_calibrate
      threads models_file execute workspace engine_spec reorder format_
      trace_file metrics_file journal_file =
    if threads < 1 then begin
      Printf.eprintf "--threads expects a positive integer\n";
      exit 1
    end;
    (* --engine SPEC configures the execution substrate of --execute; the
       locality axis stays with selection unless the spec forces it. *)
    let spec_forces_locality spec =
      String.split_on_char ',' spec |> List.map String.trim
      |> List.exists (fun f ->
             String.length f >= 9 && String.sub f 0 9 = "locality=")
    in
    let engine_base, engine_forces_locality =
      match engine_spec with
      | None | Some "show" -> (Engine.default_config, false)
      | Some spec -> (
          match Engine.config_of_string spec with
          | Ok c -> (c, spec_forces_locality spec)
          | Error msg ->
              Printf.eprintf "--engine: %s\n" msg;
              exit 1)
    in
    let engine_base =
      { engine_base with workspace = engine_base.Engine.workspace || workspace }
    in
    (match Engine.create engine_base with
    | Ok e -> Engine.shutdown e
    | Error e ->
        Printf.eprintf "--engine: %s\n" (Engine.error_to_string e);
        exit 1);
    if engine_spec = Some "show" then begin
      print_endline (Engine.describe_config engine_base);
      print_endline
        "(locality is selection's choice at --execute time unless the spec \
         carries a locality= key)";
      exit 0
    end;
    (* The --reorder/--format axes restrict the configuration space the
       joint argmin searches; "auto" leaves an axis free. *)
    let strategies =
      if reorder = "auto" then G.Reorder.all_strategies
      else
        match G.Reorder.strategy_of_string reorder with
        | Some s -> [ s ]
        | None ->
            Printf.eprintf
              "--reorder expects auto, identity, degree, bfs or rcm\n";
            exit 1
    in
    let formats =
      if format_ = "auto" then Locality.all_formats
      else
        match Locality.format_of_string format_ with
        | Some f -> [ f ]
        | None ->
            Printf.eprintf "--format expects auto, csr, hybrid, bsr or cbm\n";
            exit 1
    in
    let configs =
      let cross =
        List.concat_map
          (fun strategy ->
            List.filter_map
              (fun format ->
                let c = { Locality.strategy; format } in
                (* bsr composes only with the identity ordering *)
                if Locality.legal c then Some c else None)
              formats)
          strategies
      in
      if cross = [] then begin
        Printf.eprintf
          "--format bsr requires --reorder identity (or auto): bsr tiles \
           accumulate in column-sorted order and cannot ride a reordered \
           matrix\n";
        exit 1
      end;
      (* keep the default (legacy) configuration first so it wins ties *)
      if List.exists Locality.is_default cross then
        Locality.default :: List.filter (fun c -> not (Locality.is_default c)) cross
      else cross
    in
    (* a locality= key in --engine overrides the joint argmin's layout axis;
       a cache without one restricts the search to the default layout (the
       only one a cache-enabled engine can legally execute) *)
    let configs =
      if engine_forces_locality then [ engine_base.Engine.locality ]
      else if engine_base.Engine.cache then [ Locality.default ]
      else configs
    in
    let obs = obs_of_flags ~trace_file ~metrics_file ~journal_file in
    let sys = Sys_.System.find system in
    let low, compiled, _ =
      compile_model ~obs model ~binned:sys.Sys_.System.binned_degrees
    in
    let profile =
      if not auto_calibrate then profile
      else begin
        Printf.printf "micro-probing host to re-anchor %s...\n%!"
          profile.Granii_hw.Hw_profile.name;
        let p = Granii_hw.Calibrate.profile ~base:profile () in
        Printf.printf
          "  %s: dense %.1f gflops, sparse %.1f gflops, stream %.1f GB/s, \
           random %.1f GB/s\n"
          p.Granii_hw.Hw_profile.name p.Granii_hw.Hw_profile.dense_gflops
          p.Granii_hw.Hw_profile.sparse_gflops
          p.Granii_hw.Hw_profile.stream_gbps p.Granii_hw.Hw_profile.random_gbps;
        p
      end
    in
    let oracle =
      let base =
        match models_file with
        | Some file -> Cost_model.load file
        | None ->
            if analytic then Cost_model.analytic profile
            else begin
              Printf.printf "training cost models for %s...\n%!"
                profile.Granii_hw.Hw_profile.name;
              Cost_model.train ~profile (Profiling.collect ~profile ())
            end
      in
      Cost_oracle.of_model ~obs base
    in
    let localized =
      Granii.optimize_localized ~obs ~oracle ~graph ~k_in ~k_out ~iterations
        ~threads ~configs compiled
    in
    let decision = localized.Granii.ldecision in
    Printf.printf
      "input: %s (n=%d nnz=%d), %d -> %d, cost model %s, %d iterations, %d thread%s\n"
      graph.G.Graph.name (G.Graph.n_nodes graph) (G.Graph.n_edges graph) k_in k_out
      (Cost_oracle.name oracle) iterations threads
      (if threads = 1 then "" else "s");
    Printf.printf "overhead: %.3f ms (featurize %.3f + select %.3f)\n"
      (1000. *. decision.Granii.overhead)
      (1000. *. decision.Granii.feats.Featurizer.extraction_time)
      (1000. *. decision.Granii.choice.Selector.selection_time);
    Printf.printf "layout: %s" (Locality.config_to_string localized.Granii.config);
    if not (Locality.is_default localized.Granii.config) then
      Printf.printf " (%.3f ms predicted vs %.3f ms legacy)"
        (1000. *. decision.Granii.choice.Selector.predicted_cost)
        (1000. *. localized.Granii.base_cost);
    print_newline ();
    let env = env_of graph k_in k_out in
    let ranked =
      Selector.rank ~oracle ~feats:decision.Granii.feats ~env ~iterations compiled
    in
    List.iteri
      (fun i (c, cost) ->
        Printf.printf "%s #%d %-14s %10.3f ms   %s\n"
          (if i = 0 then "->" else "  ")
          (i + 1) c.Codegen.plan.Plan.name (1000. *. cost)
          (String.concat " ; "
             (List.map (Format.asprintf "%a" Primitive.pp)
                (Plan.primitives c.Codegen.plan))))
      ranked;
    (match execute with
    | None ->
        if workspace then
          Printf.eprintf "note: --workspace only matters with --execute N\n"
    | Some iters when iters < 1 ->
        Printf.eprintf "--execute expects a positive integer\n";
        exit 1
    | Some iters ->
        let module Dense = Granii_tensor.Dense in
        let module Gnn = Granii_gnn in
        let plan = decision.Granii.choice.Selector.candidate.Codegen.plan in
        let params = Gnn.Layer.init_params ~seed:0 ~env low in
        let h = Dense.random ~seed:1 (G.Graph.n_nodes graph) k_in in
        let bindings = Gnn.Layer.bindings ~graph ~h params in
        let ecfg =
          { engine_base with
            Engine.locality =
              (if engine_forces_locality then engine_base.Engine.locality
               else localized.Granii.config) }
        in
        let engine =
          match Engine.create ~obs ecfg with
          | Ok e -> e
          | Error e ->
              Printf.eprintf "--engine: %s\n" (Engine.error_to_string e);
              exit 1
        in
        let run_once () =
          Executor.exec_iterations ~engine ~timing:Executor.Measure ~graph
            ~bindings ~iterations:iters plan
        in
        (* warm-up run so the measured one sees steady state (and, with a
           workspace, a warm arena) *)
        ignore (run_once ());
        let g0 = Gc.quick_stat () in
        let r = run_once () in
        let g1 = Gc.quick_stat () in
        let per x = x /. float_of_int iters in
        Printf.printf
          "executed %s on host CPU: %d iterations\n\
          \  engine: %s\n\
          \  setup %.3f ms, layout %.3f ms, %.3f ms/iteration\n\
          \  GC: %.0f minor + %.0f major words/iteration\n"
          plan.Plan.name iters
          (Engine.describe engine)
          (1000. *. r.Executor.setup_time)
          (1000. *. r.Executor.layout_time)
          (1000. *. r.Executor.iteration_time)
          (per (g1.Gc.minor_words -. g0.Gc.minor_words))
          (per (g1.Gc.major_words -. g0.Gc.major_words));
        (match Engine.workspace engine with
        | None -> ()
        | Some w ->
            let s = Granii_tensor.Workspace.stats w in
            Printf.printf "  arena: %d hits / %d misses, %d words held\n"
              s.Granii_tensor.Workspace.hits s.Granii_tensor.Workspace.misses
              (s.Granii_tensor.Workspace.held_words
              + s.Granii_tensor.Workspace.issued_words));
        Engine.shutdown engine);
    export_telemetry obs ~trace_file ~metrics_file ~journal_file
  in
  Cmd.v
    (Cmd.info "select"
       ~doc:"Run the online stage: featurize an input and rank the candidates")
    Term.(const run $ model_pos $ graph $ k_in $ k_out $ hw $ iterations $ system
          $ analytic $ auto_calibrate $ threads $ models_file $ execute
          $ workspace $ engine_spec $ reorder $ format_ $ trace_file_arg
          $ metrics_file_arg $ journal_file_arg)

(* granii stats: a fully-telemetered end-to-end run (compile -> featurize ->
   select -> execute N iterations in Measure mode on the host CPU) reported
   through the observability subsystem itself: span aggregate, metrics
   registry and the cost-model accuracy monitor. *)
let stats_cmd =
  let graph =
    Arg.(value & opt graph_arg (G.Generators.rmat ~scale:10 ~edge_factor:8 ())
         & info [ "graph"; "g" ] ~docv:"GRAPH"
             ~doc:"Input graph (dataset key or generator spec).")
  in
  let k_in = Arg.(value & opt int 64 & info [ "kin" ] ~doc:"Input embedding size.") in
  let k_out = Arg.(value & opt int 64 & info [ "kout" ] ~doc:"Output embedding size.") in
  let iterations =
    Arg.(value & opt int 10
         & info [ "iterations"; "n" ] ~doc:"Measured iterations to execute.")
  in
  let threads =
    Arg.(value & opt int 1 & info [ "threads"; "t" ] ~doc:"Engine thread count.")
  in
  let calibration =
    Arg.(value & opt string "affine"
         & info [ "calibration" ] ~docv:"POLICY"
             ~doc:
               "Online-calibration policy of the engine's cost oracle: \
                $(b,off), $(b,affine) (per-primitive corrections fitted from \
                the live (predicted, measured) stream) or $(b,refit) (affine \
                plus incremental GBRT refits). A calibration table (base vs \
                corrected error and rank inversions per primitive) is \
                reported after the run.")
  in
  let run model graph k_in k_out iterations threads calibration trace_file
      metrics_file journal_file =
    if iterations < 1 || threads < 1 then begin
      Printf.eprintf "--iterations and --threads expect positive integers\n";
      exit 1
    end;
    let calibration =
      match Cost_oracle.calibration_of_string calibration with
      | Some c -> c
      | None ->
          Printf.eprintf "--calibration expects off, affine or refit\n";
          exit 1
    in
    let obs = Obs.create () in
    let low, compiled, _ = compile_model ~obs model ~binned:false in
    (* the analytic host-CPU oracle: the same predictor the cost monitor
       scores against the measured wall clock *)
    let oracle = Cost_oracle.analytic Granii_hw.Hw_profile.cpu in
    let localized =
      Granii.optimize_localized ~obs ~oracle ~graph ~k_in ~k_out ~iterations
        ~threads compiled
    in
    let decision = localized.Granii.ldecision in
    let plan = decision.Granii.choice.Selector.candidate.Codegen.plan in
    let env =
      { Dim.n = G.Graph.n_nodes graph;
        nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
        k_in;
        k_out }
    in
    let module Dense = Granii_tensor.Dense in
    let module Gnn = Granii_gnn in
    let params = Gnn.Layer.init_params ~seed:0 ~env low in
    let h = Dense.random ~seed:1 (G.Graph.n_nodes graph) k_in in
    let bindings = Gnn.Layer.bindings ~graph ~h params in
    let ecfg =
      Granii.engine_config ~threads ~telemetry:true ~calibration localized
    in
    let engine =
      match Engine.create ~obs ecfg with
      | Ok e -> e
      | Error e ->
          Printf.eprintf "engine: %s\n" (Engine.error_to_string e);
          exit 1
    in
    let r =
      Executor.exec_iterations ~engine ~timing:Executor.Measure ~graph ~bindings
        ~iterations plan
    in
    Engine.shutdown engine;
    Printf.printf
      "%s on %s (n=%d nnz=%d) %d->%d, %d iterations, engine %s\n\
       selected %s: setup %.3f ms, layout %.3f ms, %.3f ms/iteration\n\n"
      compiled.Codegen.model_name graph.G.Graph.name (G.Graph.n_nodes graph)
      (G.Graph.n_edges graph) k_in k_out iterations (Engine.describe engine)
      plan.Plan.name
      (1000. *. r.Executor.setup_time)
      (1000. *. r.Executor.layout_time)
      (1000. *. r.Executor.iteration_time);
    (match obs.Obs.trace with
    | None -> ()
    | Some t ->
        Printf.printf "spans (%d recorded, %d still open):\n" (Obs.Trace.count t)
          (Obs.Trace.open_spans t);
        Printf.printf "  %-22s %8s %14s\n" "name" "count" "total ms";
        List.iter
          (fun (name, count, total) ->
            Printf.printf "  %-22s %8d %14.3f\n" name count (1000. *. total))
          (Obs.Trace.aggregate t);
        (* the invariant granii's traces promise: per-step spans of the
           iteration phase sum to the report's measured iteration time *)
        let step_total =
          List.fold_left
            (fun acc (name, _, total) ->
              if List.exists
                   (fun (s : Plan.step) -> Primitive.name s.Plan.prim = name)
                   plan.Plan.steps
              then acc +. total
              else acc)
            0. (Obs.Trace.aggregate t)
        in
        Printf.printf
          "  step spans total %.3f ms vs measured %.3f ms (setup + %d x iteration)\n\n"
          (1000. *. step_total)
          (1000.
          *. (r.Executor.setup_time
             +. (float_of_int iterations *. r.Executor.iteration_time)))
          iterations);
    (match obs.Obs.metrics with
    | None -> ()
    | Some m ->
        Printf.printf "counters:\n";
        List.iter
          (fun (name, v) -> Printf.printf "  %-38s %12d\n" name v)
          (Obs.Metrics.counters m);
        Printf.printf "gauges:\n";
        List.iter
          (fun (name, v) -> Printf.printf "  %-38s %12.0f\n" name v)
          (Obs.Metrics.gauges m);
        Printf.printf "histograms:\n";
        List.iter
          (fun (name, (count, sum, min_, max_)) ->
            Printf.printf "  %-38s n=%-6d sum %10.3f ms  [%0.3f .. %0.3f ms]\n"
              name count (1000. *. sum) (1000. *. min_) (1000. *. max_))
          (Obs.Metrics.histograms m);
        print_newline ());
    (match obs.Obs.costmon with
    | None -> ()
    | Some cm -> Format.printf "%a@." Obs.Cost_monitor.pp cm);
    (* the engine's oracle saw every (predicted, measured) pair the run
       produced; force one calibration pass so the table shows the fitted
       corrections even on short runs *)
    let eoracle = Engine.oracle engine in
    if Cost_oracle.calibration eoracle <> Cost_oracle.Off then
      ignore (Cost_oracle.calibrate eoracle);
    Format.printf "%a@." Cost_oracle.pp_report (Cost_oracle.report eoracle);
    print_journal_summary obs;
    export_telemetry obs ~trace_file ~metrics_file ~journal_file
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a fully-telemetered compile/select/execute cycle and report \
          spans, metrics, cost-model accuracy and the event journal")
    Term.(const run $ model_pos $ graph $ k_in $ k_out $ iterations $ threads
          $ calibration $ trace_file_arg $ metrics_file_arg $ journal_file_arg)

let baseline_cmd =
  let k_in = Arg.(value & opt int 256 & info [ "kin" ] ~doc:"Input embedding size.") in
  let k_out = Arg.(value & opt int 256 & info [ "kout" ] ~doc:"Output embedding size.") in
  let run model k_in k_out =
    List.iter
      (fun sys ->
        let plan = Sys_.Baseline.plan (Sys_.Baseline.make sys model) ~k_in ~k_out in
        Format.printf "%s default:@.%a@.@." sys.Sys_.System.sys_name Plan.pp plan)
      Sys_.System.all
  in
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Show the WiseGraph/DGL default composition for a configuration")
    Term.(const run $ model_pos $ k_in $ k_out)

let train_costmodel_cmd =
  let hw =
    Arg.(value & opt hw_arg Granii_hw.Hw_profile.a100
         & info [ "hw" ] ~doc:"Hardware profile to profile against.")
  in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to save the trained models.")
  in
  let measured =
    Arg.(value & flag
         & info [ "measured" ]
             ~doc:
               "Label the profiling data by actually executing and timing every \
                primitive on this machine's CPU instead of the simulated profile.")
  in
  let threads_grid =
    Arg.(value & opt (list int) [ 1 ]
         & info [ "threads-grid" ] ~docv:"N,N,..."
             ~doc:
               "Thread counts to profile the simulated kernels at (e.g. \
                $(b,1,2,4,8)); the trained models then see the thread count \
                as a feature. Ignored with $(b,--measured).")
  in
  let run profile output measured threads_grid =
    if List.exists (fun t -> t < 1) threads_grid || threads_grid = [] then begin
      Printf.eprintf "--threads-grid expects positive integers\n";
      exit 1
    end;
    let data, profile =
      if measured then begin
        Printf.printf "measuring primitives on the host CPU...\n%!";
        (Profiling.collect_measured (), Granii_hw.Hw_profile.cpu)
      end
      else begin
        Printf.printf "profiling primitives on %s...\n%!"
          profile.Granii_hw.Hw_profile.name;
        (Profiling.collect ~profile ~threads_grid (), profile)
      end
    in
    Printf.printf "training %d per-primitive models...\n%!" (List.length data);
    let cm = Cost_model.train ~profile data in
    Cost_model.save cm output;
    Printf.printf "saved %s to %s\n" (Cost_model.name cm) output
  in
  Cmd.v
    (Cmd.info "train-costmodel"
       ~doc:
         "The initialization script: profile every primitive and train the \
          per-primitive cost models, saving them to disk (was $(b,granii \
          train) before mini-batch training took that name)")
    Term.(const run $ hw $ output $ measured $ threads_grid)

(* granii train: pipelined mini-batch GNN training (lib/gnn Loader +
   Trainer.train_minibatch) on synthetic features/labels — the CLI surface
   of the mini-batch tentpole. *)
let train_cmd =
  let module Gnn = Granii_gnn in
  let graph =
    Arg.(value & opt graph_arg (G.Generators.rmat ~scale:10 ~edge_factor:16 ())
         & info [ "graph"; "g" ] ~docv:"GRAPH"
             ~doc:"Input graph (dataset key or generator spec).")
  in
  let k_in = Arg.(value & opt int 32 & info [ "kin" ] ~doc:"Input embedding size.") in
  let classes =
    Arg.(value & opt int 5 & info [ "classes" ] ~doc:"Number of label classes.")
  in
  let sample =
    let parse s =
      let fail () =
        Error (`Msg (s ^ ": expected fanout=<n>[,<n>...], e.g. fanout=10,5"))
      in
      match String.split_on_char '=' s with
      | [ "fanout"; spec ] -> (
          match
            List.map int_of_string_opt (String.split_on_char ',' spec)
          with
          | [] -> fail ()
          | fs when List.exists (function Some f -> f > 0 | None -> false) fs
                    && List.for_all (function Some f -> f > 0 | None -> false) fs
            -> Ok (List.filter_map Fun.id fs)
          | _ -> fail ())
      | _ -> fail ()
    in
    let print ppf fs =
      Format.fprintf ppf "fanout=%s"
        (String.concat "," (List.map string_of_int fs))
    in
    Arg.(value & opt (conv (parse, print)) [ 10; 5 ]
         & info [ "sample" ] ~docv:"SPEC"
             ~doc:
               "Layered sampling schedule, $(b,fanout=<n>[,<n>...]): per-hop \
                neighbor caps walked backward from each seed batch.")
  in
  let batch_size =
    Arg.(value & opt int 256
         & info [ "batch-size"; "b" ] ~doc:"Seed nodes per mini-batch.")
  in
  let epochs =
    Arg.(value & opt int 3 & info [ "epochs" ] ~doc:"Training epochs.")
  in
  let pipeline =
    Arg.(value & flag
         & info [ "pipeline" ]
             ~doc:
               "Prepare batch i+1 on a dedicated domain while batch i \
                executes (the default; $(b,--sequential) is the ablation).")
  in
  let sequential =
    Arg.(value & flag
         & info [ "sequential" ]
             ~doc:
               "Sample and featurize inline on the training thread — the \
                pipeline ablation arm. Losses are bitwise identical to \
                $(b,--pipeline).")
  in
  let lr =
    Arg.(value & opt float 0.01 & info [ "lr" ] ~doc:"Adam learning rate.")
  in
  let threads =
    Arg.(value & opt int 1
         & info [ "threads"; "t" ] ~doc:"Execution-engine thread count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Run seed.") in
  let models_file =
    Arg.(value & opt (some string) None
         & info [ "models-file" ] ~docv:"FILE"
             ~doc:"Load cost models saved by $(b,granii train-costmodel) \
                   (default: the analytic host-CPU model).")
  in
  let run model graph k_in classes fanouts batch_size epochs pipeline
      sequential lr threads seed models_file trace_file metrics_file
      journal_file =
    if pipeline && sequential then begin
      Printf.eprintf "--pipeline and --sequential are mutually exclusive\n";
      exit 1
    end;
    if k_in < 1 || classes < 2 || batch_size < 1 || epochs < 1 || threads < 1
    then begin
      Printf.eprintf
        "--kin, --batch-size, --epochs and --threads expect positive \
         integers; --classes at least 2\n";
      exit 1
    end;
    let mode = if sequential then Gnn.Loader.Sequential else Gnn.Loader.Pipelined in
    let obs = obs_of_flags ~trace_file ~metrics_file ~journal_file in
    let oracle =
      match models_file with
      | Some file -> Cost_oracle.load file
      | None -> Cost_oracle.analytic Granii_hw.Hw_profile.cpu
    in
    let low, compiled, _ = compile_model ~obs model ~binned:false in
    let n = G.Graph.n_nodes graph in
    let rng = Granii_tensor.Prng.create (seed + 13) in
    let labels =
      Array.init n (fun _ -> Granii_tensor.Prng.int rng classes)
    in
    let features =
      Granii_tensor.Dense.init n k_in (fun i j ->
          Granii_tensor.Prng.normal rng
          +. if j = labels.(i) mod k_in then 1.5 else 0.)
    in
    let env =
      { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out = classes }
    in
    let params = Gnn.Layer.init_params ~seed:(seed + 4) ~env low in
    let engine =
      Engine.create_exn ~obs { Engine.default_config with threads }
    in
    Printf.printf
      "train: %s on %s (n=%d nnz=%d), %d -> %d, fanout=%s batch=%d \
       epochs=%d, %s, %d thread%s\n%!"
      model.Mp.Mp_ast.name graph.G.Graph.name n (G.Graph.n_edges graph) k_in
      classes
      (String.concat "," (List.map string_of_int fanouts))
      batch_size epochs
      (Gnn.Loader.mode_to_string mode)
      threads
      (if threads = 1 then "" else "s");
    let h =
      Gnn.Trainer.train_minibatch ~seed ~engine ~mode ~classes ~fanouts
        ~epochs ~batch_size
        ~optimizer:(Gnn.Optimizer.adam ~lr ())
        ~oracle ~compiled ~graph ~features ~labels ~params ()
    in
    Engine.shutdown engine;
    Array.iteri
      (fun e loss -> Printf.printf "epoch %d  loss %.4f\n" e loss)
      h.Gnn.Trainer.epoch_losses;
    let pc = h.Gnn.Trainer.cache_stats in
    let wall = h.Gnn.Trainer.wall_time in
    Printf.printf
      "%d batches in %.3f s (%.1f ms/epoch)\n\
       stages      sample %.1f ms, featurize %.1f ms, select %.1f ms, exec \
       %.1f ms\n\
       pipeline    stall %.1f ms (%.1f%% of wall)\n\
       plan cache  %d hits / %d misses / %d evictions, selection %.2f%% of \
       wall\n"
      h.Gnn.Trainer.n_batches wall
      (1000. *. wall /. float_of_int epochs)
      (1000. *. h.Gnn.Trainer.sample_time)
      (1000. *. h.Gnn.Trainer.featurize_time)
      (1000. *. h.Gnn.Trainer.selection_time)
      (1000. *. h.Gnn.Trainer.exec_time)
      (1000. *. h.Gnn.Trainer.stall_time)
      (100. *. h.Gnn.Trainer.stall_time /. wall)
      pc.Plan_cache.hits pc.Plan_cache.misses pc.Plan_cache.evictions
      (100. *. h.Gnn.Trainer.selection_time /. wall);
    export_telemetry obs ~trace_file ~metrics_file ~journal_file
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Mini-batch GNN training: layered neighbor sampling through the \
          plan cache, optionally pipelined on a dedicated loader domain")
    Term.(const run $ model_pos $ graph $ k_in $ classes $ sample $ batch_size
          $ epochs $ pipeline $ sequential $ lr $ threads $ seed $ models_file
          $ trace_file_arg $ metrics_file_arg $ journal_file_arg)

(* granii serve-sim: closed-loop load against the multi-tenant serving
   runtime (lib/serve). Each simulated client keeps one request outstanding;
   the report is the serving tentpole's headline numbers — latency
   percentiles, throughput, batch widths and plan-cache amortization. *)
let serve_sim_cmd =
  let module Serve = Granii_serve.Serve in
  let module Ssim = Granii_serve.Sim in
  let graph =
    Arg.(value & opt graph_arg (G.Generators.rmat ~scale:10 ~edge_factor:8 ())
         & info [ "graph"; "g" ] ~docv:"GRAPH"
             ~doc:"Input graph (dataset key or generator spec).")
  in
  let k_in = Arg.(value & opt int 32 & info [ "kin" ] ~doc:"Input embedding size.") in
  let k_out = Arg.(value & opt int 16 & info [ "kout" ] ~doc:"Output embedding size.") in
  let requests =
    Arg.(value & opt int 256
         & info [ "requests"; "n" ] ~doc:"Total requests to serve.")
  in
  let clients =
    Arg.(value & opt int 8
         & info [ "clients" ]
             ~doc:"Concurrent closed-loop clients (each keeps one request \
                   outstanding).")
  in
  let tenants =
    Arg.(value & opt int 2
         & info [ "tenants" ] ~doc:"Tenants the clients are spread across.")
  in
  let workers =
    Arg.(value & opt int 2
         & info [ "workers" ]
             ~doc:"Worker domains; $(b,0) runs the scheduler on the \
                   simulation loop itself (manual mode).")
  in
  let queue_bound =
    Arg.(value & opt int 64
         & info [ "queue-bound" ] ~doc:"Per-tenant admission-queue capacity.")
  in
  let window =
    Arg.(value & opt int 0
         & info [ "window" ] ~docv:"USEC"
             ~doc:"Microseconds a worker holds a partial batch open for \
                   late-arriving coalescible requests.")
  in
  let max_batch =
    Arg.(value & opt int 8
         & info [ "max-batch" ] ~doc:"Widest coalesced batch.")
  in
  let no_batch =
    Arg.(value & flag
         & info [ "no-batch" ]
             ~doc:"Disable request coalescing (every execution has width 1).")
  in
  let no_plan_cache =
    Arg.(value & flag
         & info [ "no-plan-cache" ]
             ~doc:"Disable the plan cache (selection runs on every request).")
  in
  let threads =
    Arg.(value & opt int 1
         & info [ "threads"; "t" ]
             ~doc:"Kernel thread count (manual mode only; worker domains \
                   always run kernels sequentially).")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Client feature-matrix seed.")
  in
  let slo =
    Arg.(value & opt (some float) None
         & info [ "slo" ] ~docv:"MS"
             ~doc:
               "Per-request latency objective in milliseconds: completions \
                slower than $(docv) count as SLO breaches, reported as a \
                breach rate and time-to-first-breach.")
  in
  let run model graph k_in k_out requests clients tenants workers queue_bound
      window max_batch no_batch no_plan_cache threads seed slo trace_file
      metrics_file journal_file =
    if k_in < 1 || k_out < 1 || requests < 1 || clients < 1 || tenants < 1 then begin
      Printf.eprintf
        "--kin, --kout, --requests, --clients and --tenants expect positive \
         integers\n";
      exit 1
    end;
    let obs = obs_of_flags ~trace_file ~metrics_file ~journal_file in
    let cfg =
      { Serve.default_config with
        workers;
        queue_bound;
        batch_window = window;
        max_batch;
        plan_cache = (if no_plan_cache then 0 else Serve.default_config.Serve.plan_cache);
        batching = not no_batch;
        threads;
        slo_ms = slo }
    in
    let server =
      try Serve.create ~obs cfg
      with Invalid_argument msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    in
    Serve.register_graph server ~name:graph.G.Graph.name graph;
    let load =
      { Ssim.clients;
        requests;
        tenants;
        graph = graph.G.Graph.name;
        model = model.Mp.Mp_ast.name;
        k_in;
        k_out;
        seed }
    in
    let res = Ssim.run server load in
    Serve.shutdown server;
    let sketch = Serve.latency_sketch server in
    let s = res.Ssim.stats in
    Printf.printf
      "serve-sim: %s on %s (n=%d nnz=%d) %d->%d\n\
       %d requests, %d clients across %d tenants; workers=%d threads=%d \
       queue_bound=%d window=%dus max_batch=%d batching=%s plan_cache=%d\n\n"
      model.Mp.Mp_ast.name graph.G.Graph.name (G.Graph.n_nodes graph)
      (G.Graph.n_edges graph) k_in k_out requests clients tenants workers
      threads queue_bound window max_batch
      (if no_batch then "off" else "on")
      cfg.Serve.plan_cache;
    Printf.printf "completed   %d in %.3f s  =  %.1f req/s\n" s.Serve.completed
      res.Ssim.wall res.Ssim.throughput;
    Printf.printf "latency     p50 %.3f ms   p99 %.3f ms   mean %.3f ms\n"
      (1000. *. res.Ssim.p50) (1000. *. res.Ssim.p99)
      (1000. *. res.Ssim.mean_latency);
    Printf.printf
      "batches     %d (mean width %.2f, max %d), %d widened steps\n"
      s.Serve.batches res.Ssim.mean_width s.Serve.max_width
      s.Serve.widened_steps;
    let pc = s.Serve.plan_cache in
    Printf.printf "plan cache  %d hits / %d misses / %d evictions\n"
      pc.Granii_serve.Plan_cache.hits pc.Granii_serve.Plan_cache.misses
      pc.Granii_serve.Plan_cache.evictions;
    Printf.printf "backpressure retries %d\n" res.Ssim.retries;
    if Obs.Sketch.count sketch > 0 then
      Printf.printf
        "sketch      p50 %.3f ms   p95 %.3f ms   p99 %.3f ms  (streaming, \
         %d samples)\n"
        (1000. *. Obs.Sketch.quantile sketch 0.5)
        (1000. *. Obs.Sketch.quantile sketch 0.95)
        (1000. *. Obs.Sketch.quantile sketch 0.99)
        (Obs.Sketch.count sketch);
    (match slo with
    | None -> ()
    | Some ms ->
        Printf.printf "slo %.1fms   %d breaches = %.1f%% of completions%s\n"
          ms s.Serve.slo_breaches
          (100. *. res.Ssim.breach_rate)
          (match res.Ssim.first_breach_s with
          | Some fb -> Printf.sprintf ", first after %.3f s" fb
          | None -> ""));
    print_newline ();
    print_journal_summary obs;
    export_telemetry obs ~trace_file ~metrics_file ~journal_file
  in
  Cmd.v
    (Cmd.info "serve-sim"
       ~doc:
         "Drive the multi-tenant serving runtime with closed-loop simulated \
          load and report latency percentiles, throughput, batching and SLO \
          stats")
    Term.(const run $ model_pos $ graph $ k_in $ k_out $ requests $ clients
          $ tenants $ workers $ queue_bound $ window $ max_batch $ no_batch
          $ no_plan_cache $ threads $ seed $ slo $ trace_file_arg
          $ metrics_file_arg $ journal_file_arg)

let main =
  let doc = "GRANII: input-aware selection and ordering of GNN primitives" in
  Cmd.group
    (Cmd.info "granii" ~version:"1.0.0" ~doc)
    [ models_cmd; datasets_cmd; enumerate_cmd; codegen_cmd; select_cmd;
      stats_cmd; baseline_cmd; train_cmd; train_costmodel_cmd; serve_sim_cmd ]

let () =
  (* -v / GRANII_VERBOSE=1 turns on the library's decision log *)
  let verbose =
    Array.exists (fun a -> a = "-v" || a = "--verbose") Sys.argv
    || Sys.getenv_opt "GRANII_VERBOSE" <> None
  in
  if verbose then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.Src.set_level Granii.log_src (Some Logs.Info)
  end;
  let argv = Array.of_list (List.filter (fun a -> a <> "-v" && a <> "--verbose")
                              (Array.to_list Sys.argv)) in
  exit (Cmd.eval ~argv main)
