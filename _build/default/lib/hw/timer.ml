(* Sys.time measures CPU time which is what we want for single-threaded
   kernel benchmarking (immune to scheduler noise); fall back semantics are
   identical on all supported platforms. *)
let now () = Sys.time ()

let measure f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let measure_n ?(warmup = 1) ~n f =
  if n <= 0 then invalid_arg "Timer.measure_n: n must be positive";
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = now () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = now () in
  (t1 -. t0) /. float_of_int n
