(** Wall-clock measurement helpers for real (host-CPU) execution. *)

val now : unit -> float
(** Monotonic-enough wall-clock seconds ([Unix]-free; uses
    [Sys.time]-independent [Stdlib] clock via [Sys.opaque_identity]-safe
    sampling). *)

val measure : (unit -> 'a) -> 'a * float
(** [measure f] runs [f] once and returns its result with elapsed seconds. *)

val measure_n : ?warmup:int -> n:int -> (unit -> 'a) -> float
(** [measure_n ~n f] runs [f] [warmup] times (default [1]) untimed, then [n]
    times timed, returning the {e average} seconds per run. *)
