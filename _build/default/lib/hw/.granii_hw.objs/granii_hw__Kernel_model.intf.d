lib/hw/kernel_model.mli: Format Hw_profile
