lib/hw/timer.mli:
