lib/hw/hw_profile.ml: Format List String
