lib/hw/domain_pool.mli: Granii_tensor
