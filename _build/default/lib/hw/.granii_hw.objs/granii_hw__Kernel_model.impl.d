lib/hw/kernel_model.ml: Float Format Granii_tensor Hashtbl Hw_profile
