lib/hw/hw_profile.mli: Format
