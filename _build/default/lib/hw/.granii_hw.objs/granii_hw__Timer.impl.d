lib/hw/timer.ml: Sys
