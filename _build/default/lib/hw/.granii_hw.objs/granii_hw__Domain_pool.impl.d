lib/hw/domain_pool.ml: Fun Granii_tensor
