(** Default (hard-coded) primitive compositions of the baseline systems.

    For a (system, model) pair this module materializes the composition the
    framework's stock implementation uses, selected from the same
    enumeration space GRANII explores:

    - the {e dynamic-normalization} form (row-broadcasts + unweighted SpMM,
      Eq. 2) — what both frameworks hard-code for GCN-family models;
    - the update GEMM placed by embedding sizes when the implementation
      reorders by configuration, and at the model's fixed default position
      otherwise (Sec. VI-B/VI-C1);
    - GAT's reuse/recompute per the system's policy (Sec. III-B);
    - {e no hoisting} and the system's degree kernel (see {!System}). *)

type t

val make : System.t -> Granii_mp.Mp_ast.model -> t
(** Prepares the baseline for a model (enumerates the model's composition
    space once; memoized per model). *)

val plan : t -> k_in:int -> k_out:int -> Granii_core.Plan.t
(** The default composition the system would execute for this
    configuration. *)

val lowered : t -> Granii_mp.Lower.lowered

val system : t -> System.t

(** {1 Classification helpers (exposed for tests and oracles)} *)

val is_dynamic_pure : Granii_core.Assoc_tree.t -> bool
(** No precomputed weighted-sparse intermediates: only row-broadcasts and
    unweighted SpMMs touch the graph. *)

val spmm_dims : Granii_core.Assoc_tree.t -> Granii_core.Dim.t list
(** The embedding dimension of every SpMM in the tree ([Kin] = aggregation
    before the update, [Kout] = after). *)

val gemm_count : Granii_core.Assoc_tree.t -> int
