lib/systems/system.ml: List String
