lib/systems/baseline.ml: Granii_core Granii_mp Hashtbl List Printf System
