lib/systems/system.mli:
