lib/systems/baseline.mli: Granii_core Granii_mp System
