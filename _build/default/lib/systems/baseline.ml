module Core = Granii_core
module Mp = Granii_mp

type t = {
  sys : System.t;
  model : Mp.Mp_ast.model;
  low : Mp.Lower.lowered;
  forest : Core.Assoc_tree.t list;
}

let forest_cache : (string, Mp.Lower.lowered * Core.Assoc_tree.t list) Hashtbl.t =
  Hashtbl.create 8

let make sys (model : Mp.Mp_ast.model) =
  let low, forest =
    match Hashtbl.find_opt forest_cache model.Mp.Mp_ast.name with
    | Some cached -> cached
    | None ->
        let low = Mp.Lower.lower model in
        let forest = Core.Enumerate.forest low.Mp.Lower.ir in
        Hashtbl.add forest_cache model.Mp.Mp_ast.name (low, forest);
        (low, forest)
  in
  { sys; model; low; forest }

let lowered b = b.low
let system b = b.sys

let is_dynamic_pure tree =
  List.for_all
    (fun prim ->
      match prim with
      | Core.Primitive.Sddmm_rank1 | Core.Primitive.Diag_scale _
      | Core.Primitive.Sparse_add _ | Core.Primitive.Diag_combine
      | Core.Primitive.Dense_sparse_mm _ ->
          false
      | Core.Primitive.Spmm { weighted; _ } -> not weighted
      | Core.Primitive.Gemm _ | Core.Primitive.Row_broadcast _
      | Core.Primitive.Col_broadcast _ | Core.Primitive.Dense_add _
      | Core.Primitive.Edge_score _ | Core.Primitive.Edge_softmax
      | Core.Primitive.Dense_map _ | Core.Primitive.Degree _ ->
          true)
    (Core.Assoc_tree.primitives tree)

let spmm_dims tree =
  List.filter_map
    (function Core.Primitive.Spmm { k; _ } -> Some k | _ -> None)
    (Core.Assoc_tree.primitives tree)

let gemm_count tree =
  List.length
    (List.filter
       (function Core.Primitive.Gemm _ -> true | _ -> false)
       (Core.Assoc_tree.primitives tree))

let op_count tree = List.length (Core.Assoc_tree.ops tree)

(* Deterministic pick: fewest operations, then lexicographic key. *)
let pick_min trees =
  match
    List.sort
      (fun a b ->
        match compare (op_count a) (op_count b) with
        | 0 -> compare (Core.Assoc_tree.tree_key a) (Core.Assoc_tree.tree_key b)
        | c -> c)
      trees
  with
  | [] -> None
  | best :: _ -> Some best

let gat_tree b ~recompute =
  let want_gemms = if recompute then 2 else 1 in
  match pick_min (List.filter (fun t -> gemm_count t = want_gemms) b.forest) with
  | Some t -> t
  | None -> failwith "Baseline: GAT composition not found in forest"

(* GCN-family default: dynamic normalization with the update GEMM either
   after aggregation (aggregate-first: SpMMs run at Kin) or before
   (update-first: SpMMs run at Kout). *)
let dynamic_tree b ~update_first =
  let want = if update_first then Core.Dim.Kout else Core.Dim.Kin in
  let matches t =
    is_dynamic_pure t
    &&
    let dims = spmm_dims t in
    dims <> [] && List.for_all (Core.Dim.equal want) dims
  in
  match pick_min (List.filter matches b.forest) with
  | Some t -> t
  | None -> (
      (* Models without an aggregation at the requested position fall back
         to any dynamic composition. *)
      match pick_min (List.filter is_dynamic_pure b.forest) with
      | Some t -> t
      | None -> failwith ("Baseline: no dynamic composition for " ^ b.model.Mp.Mp_ast.name))

let default_tree b ~k_in ~k_out =
  let model_name = b.model.Mp.Mp_ast.name in
  if b.model.Mp.Mp_ast.attention then
    let recompute =
      match b.sys.System.gat_policy with
      | System.Always_reuse -> false
      | System.Recompute_when_growing -> k_in < k_out
    in
    gat_tree b ~recompute
  else begin
    let update_first =
      if b.sys.System.reorders_by_config model_name then k_in > k_out
      else (* fixed default: aggregate first, update last *) false
    in
    dynamic_tree b ~update_first
  end

let plan b ~k_in ~k_out =
  let tree = default_tree b ~k_in ~k_out in
  Core.Plan.of_tree ~hoist:false
    ~degree_leaves:(Mp.Lower.degree_leaves b.low ~binned:b.sys.System.binned_degrees)
    ~name:
      (Printf.sprintf "%s_%s_default" b.sys.System.sys_name b.model.Mp.Mp_ast.name)
    tree
