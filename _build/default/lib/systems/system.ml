type gat_policy = Always_reuse | Recompute_when_growing

type t = {
  sys_name : string;
  binned_degrees : bool;
  reorders_by_config : string -> bool;
  gat_policy : gat_policy;
}

let wisegraph =
  { sys_name = "WiseGraph";
    binned_degrees = true;
    reorders_by_config = (fun _model -> true);
    gat_policy = Recompute_when_growing }

let dgl =
  { sys_name = "DGL";
    binned_degrees = false;
    reorders_by_config = (fun model -> String.equal model "GCN");
    gat_policy = Always_reuse }

let all = [ wisegraph; dgl ]

let find name =
  let n = String.uppercase_ascii name in
  List.find (fun s -> String.equal (String.uppercase_ascii s.sys_name) n) all
