(** Baseline GNN systems (paper, Sec. VI-B "Baseline Systems").

    The paper evaluates GRANII against the default, hard-coded primitive
    compositions of WiseGraph and DGL. A system here is exactly that: a
    fixed composition policy per model (possibly conditioned on the model
    configuration, i.e. embedding sizes — the "config-based operator
    reordering" some implementations do), plus two system-specific traits:

    - which degree kernel its normalization uses (WiseGraph's binned
      scatter-add vs DGL's cheap row-pointer diff — Sec. VI-C1);
    - no loop-invariant hoisting: framework model code is straight-line
      Python re-executed every iteration, so normalization is recomputed
      each forward pass.

    GRANII-generated code executing {e inside} a system inherits the degree
    kernel but does hoist (its runtime caches one-time work). *)

type gat_policy =
  | Always_reuse            (** DGL's default (Sec. VI-C1) *)
  | Recompute_when_growing  (** WiseGraph's config-based choice *)

type t = {
  sys_name : string;
  binned_degrees : bool;
  reorders_by_config : string -> bool;
      (** per model name: does the default implementation place the update
          GEMM according to the embedding sizes? *)
  gat_policy : gat_policy;
}

val wisegraph : t
(** WiseGraph (EuroSys'24): binned degrees, config-based reordering for all
    models, recompute-based GAT for growing embeddings. *)

val dgl : t
(** DGL v2.4: cheap degrees, config-based reordering only for GCN
    ([GraphConv]); GIN / SGC / TAGCN always aggregate first (Sec. VI-C1);
    GAT always reuses. *)

val all : t list

val find : string -> t
(** Case-insensitive lookup. Raises [Not_found]. *)
