(** CART regression trees with quantile-candidate splits.

    The weak learner inside {!Gbrt}. Splits minimize the sum of squared
    errors; candidate thresholds are quantiles of the feature values reaching
    the node (the histogram trick XGBoost uses), so fitting is
    O(samples x features x candidates) per level. *)

type t

type params = {
  max_depth : int;           (** depth 0 = a single leaf *)
  min_samples_leaf : int;    (** splits creating smaller leaves are rejected *)
  n_thresholds : int;        (** quantile candidates per feature *)
  min_gain : float;          (** minimum SSE reduction to accept a split *)
}

val default_params : params
(** [max_depth = 4], [min_samples_leaf = 3], [n_thresholds = 16],
    [min_gain = 1e-12]. *)

val fit :
  ?params:params -> ?sample_weight:float array ->
  Ml_dataset.t -> t
(** Fits a tree to the dataset. [sample_weight] defaults to all-ones. *)

val predict : t -> float array -> float

val predict_many : t -> float array array -> float array

val depth : t -> int

val n_leaves : t -> int

val feature_importance : t -> int -> float array
(** [feature_importance t n_features] sums SSE gain per feature. *)

val to_sexp : t -> Sexp_lite.t

val of_sexp : Sexp_lite.t -> t
(** Raises {!Sexp_lite.Parse_error} on a malformed encoding. *)
