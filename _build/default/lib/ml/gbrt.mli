(** Gradient-boosted regression trees — the paper's "lightweight learned cost
    models" (Sec. IV-E2), an XGBoost-equivalent built from scratch.

    Squared-error boosting: each round fits a {!Regression_tree} to the
    current residuals and adds it with shrinkage [learning_rate]; optional
    row subsampling decorrelates the trees. *)

type t

type params = {
  n_trees : int;
  learning_rate : float;
  tree_params : Regression_tree.params;
  subsample : float;     (** fraction of rows drawn (without replacement) per round *)
  seed : int;
}

val default_params : params
(** 120 trees, learning rate 0.1, depth-4 trees, subsample 0.8. *)

val fit : ?params:params -> Ml_dataset.t -> t
(** Trains on the full dataset. *)

val predict : t -> float array -> float

val predict_many : t -> float array array -> float array

val n_trees : t -> int

val feature_importance : t -> float array
(** Accumulated split gain per feature across all trees. *)

val to_sexp : t -> Sexp_lite.t

val of_sexp : Sexp_lite.t -> t
(** Raises {!Sexp_lite.Parse_error} on a malformed encoding. *)
