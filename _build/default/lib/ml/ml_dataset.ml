type t = {
  features : float array array;
  labels : float array;
  n_features : int;
}

let make features labels =
  let n = Array.length features in
  if n = 0 then invalid_arg "Ml_dataset.make: empty dataset";
  if Array.length labels <> n then invalid_arg "Ml_dataset.make: label count mismatch";
  let n_features = Array.length features.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> n_features then
        invalid_arg "Ml_dataset.make: ragged feature rows")
    features;
  { features; labels; n_features }

let n_samples d = Array.length d.labels

let subset d idx =
  { d with
    features = Array.map (fun i -> d.features.(i)) idx;
    labels = Array.map (fun i -> d.labels.(i)) idx }

let split ?(seed = 0) ~train_fraction d =
  let n = n_samples d in
  if n < 2 then invalid_arg "Ml_dataset.split: need at least two samples";
  let order = Array.init n (fun i -> i) in
  Granii_tensor.Prng.shuffle_in_place (Granii_tensor.Prng.create (seed + 7)) order;
  let n_train =
    Stdlib.max 1 (Stdlib.min (n - 1) (int_of_float (float_of_int n *. train_fraction)))
  in
  (subset d (Array.sub order 0 n_train), subset d (Array.sub order n_train (n - n_train)))

let map_labels f d = { d with labels = Array.map f d.labels }
