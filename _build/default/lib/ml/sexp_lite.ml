type t = Atom of string | List of t list

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let rec to_buffer buf = function
  | Atom s -> Buffer.add_string buf s
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          to_buffer buf item)
        items;
      Buffer.add_char buf ')'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

type token = Lparen | Rparen | Tok of string

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let flush start stop =
    if stop > start then out := Tok (String.sub s start (stop - start)) :: !out
  in
  let word_start = ref (-1) in
  let end_word () =
    if !word_start >= 0 then begin
      flush !word_start !i;
      word_start := -1
    end
  in
  while !i < n do
    (match s.[!i] with
    | '(' ->
        end_word ();
        out := Lparen :: !out
    | ')' ->
        end_word ();
        out := Rparen :: !out
    | ' ' | '\t' | '\n' | '\r' -> end_word ()
    | ';' ->
        end_word ();
        while !i < n && s.[!i] <> '\n' do
          incr i
        done
    | _ -> if !word_start < 0 then word_start := !i);
    incr i
  done;
  end_word ();
  List.rev !out

let of_string s =
  let tokens = ref (tokenize s) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let rec parse_one () =
    match peek () with
    | None -> fail "unexpected end of input"
    | Some (Tok a) ->
        advance ();
        Atom a
    | Some Lparen ->
        advance ();
        let items = ref [] in
        let rec loop () =
          match peek () with
          | None -> fail "unclosed parenthesis"
          | Some Rparen -> advance ()
          | Some (Lparen | Tok _) ->
              items := parse_one () :: !items;
              loop ()
        in
        loop ();
        List (List.rev !items)
    | Some Rparen -> fail "unexpected ')'"
  in
  let v = parse_one () in
  (match peek () with
  | None -> ()
  | Some _ -> fail "trailing tokens after the first S-expression");
  v

let atom = function
  | Atom s -> s
  | List _ -> fail "expected an atom, found a list"

let float_atom v =
  let s = atom v in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail "expected a float, found %s" s

let int_atom v =
  let s = atom v in
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "expected an integer, found %s" s

let list = function
  | List items -> items
  | Atom s -> fail "expected a list, found atom %s" s

let tagged tag v =
  match v with
  | List (Atom t :: rest) when String.equal t tag -> rest
  | List (Atom t :: _) -> fail "expected tag %s, found %s" tag t
  | List _ | Atom _ -> fail "expected a (%s ...) form" tag

(* %h round-trips doubles exactly and stays readable enough. *)
let of_float f = Atom (Printf.sprintf "%h" f)
let of_int i = Atom (string_of_int i)
