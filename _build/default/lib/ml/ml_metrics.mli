(** Regression quality metrics for cost-model evaluation (Sec. VI-G). *)

val rmse : float array -> float array -> float
(** Root mean squared error. Raises [Invalid_argument] on length mismatch or
    empty input. *)

val mae : float array -> float array -> float

val mape : float array -> float array -> float
(** Mean absolute percentage error; samples with a zero true value are
    skipped. *)

val r2 : float array -> float array -> float
(** Coefficient of determination w.r.t. the mean predictor. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation — the metric that matters for GRANII, since
    selection only needs the cost {e ordering} to be right. Ties receive
    averaged ranks. *)

val pairwise_ranking_accuracy : float array -> float array -> float
(** Fraction of sample pairs whose predicted order matches the true order
    (ties in the truth are skipped). *)
