lib/ml/sexp_lite.mli: Buffer
