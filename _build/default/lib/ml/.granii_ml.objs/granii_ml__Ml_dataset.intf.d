lib/ml/ml_dataset.mli:
