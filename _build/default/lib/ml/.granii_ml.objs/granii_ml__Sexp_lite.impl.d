lib/ml/sexp_lite.ml: Buffer Format List Printf String
