lib/ml/ml_metrics.ml: Array Float Granii_tensor
