lib/ml/gbrt.mli: Ml_dataset Regression_tree Sexp_lite
