lib/ml/ml_dataset.ml: Array Granii_tensor Stdlib
