lib/ml/regression_tree.mli: Ml_dataset Sexp_lite
