lib/ml/ml_metrics.mli:
