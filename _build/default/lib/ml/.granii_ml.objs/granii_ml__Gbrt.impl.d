lib/ml/gbrt.ml: Array Granii_tensor List Ml_dataset Regression_tree Sexp_lite Stdlib
