lib/ml/regression_tree.ml: Array List Ml_dataset Sexp_lite Stdlib
