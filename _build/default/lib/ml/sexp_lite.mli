(** A minimal S-expression reader/writer.

    Used to persist trained cost models to disk (the paper's one-time
    initialization script trains the models once per target machine;
    subsequent runs only load them). No external dependencies: atoms are
    whitespace-delimited tokens, parentheses nest, [;] starts a line
    comment. Atoms produced by {!to_string} never need quoting because
    every writer in this codebase emits only numbers and identifiers. *)

type t = Atom of string | List of t list

exception Parse_error of string
(** Raised by {!of_string} with a human-readable position message. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Renders with minimal spaces, nested lists on one line. *)

val of_string : string -> t
(** Parses exactly one S-expression (surrounding whitespace allowed).
    Raises {!Parse_error} on malformed input or trailing tokens. *)

(** {1 Typed helpers} *)

val atom : t -> string
(** Raises {!Parse_error} if the value is a list. *)

val float_atom : t -> float

val int_atom : t -> int

val list : t -> t list
(** Raises {!Parse_error} if the value is an atom. *)

val tagged : string -> t -> t list
(** [tagged tag v] checks that [v] is [List (Atom tag :: rest)] and returns
    [rest]; raises {!Parse_error} otherwise. *)

val of_float : float -> t
(** Full-precision float atom (round-trips exactly). *)

val of_int : int -> t
