(** Supervised regression datasets for the cost models. *)

type t = private {
  features : float array array;  (** row-major: one row per sample *)
  labels : float array;
  n_features : int;
}

val make : float array array -> float array -> t
(** Validates rectangularity and matching lengths. Raises [Invalid_argument]
    on empty or inconsistent data. *)

val n_samples : t -> int

val split : ?seed:int -> train_fraction:float -> t -> t * t
(** Random train/validation split (deterministic in [seed], default [0]).
    Each side is guaranteed at least one sample; raises [Invalid_argument]
    if the dataset has fewer than two samples. *)

val subset : t -> int array -> t
(** Rows selected by index (with repetition allowed — used for bootstrap
    subsampling). *)

val map_labels : (float -> float) -> t -> t
(** Label transform, e.g. log-scaling runtimes. *)
