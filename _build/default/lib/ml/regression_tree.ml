type t =
  | Leaf of float
  | Node of { feature : int; threshold : float; gain : float; left : t; right : t }

type params = {
  max_depth : int;
  min_samples_leaf : int;
  n_thresholds : int;
  min_gain : float;
}

let default_params =
  { max_depth = 4; min_samples_leaf = 3; n_thresholds = 16; min_gain = 1e-12 }

type split = { s_feature : int; s_threshold : float; s_gain : float }

(* Best split for one feature using sorted order + prefix sums: for a split
   after position p, SSE reduction = W_l * mean_l^2 + W_r * mean_r^2
   - W * mean^2 (constant term dropped since it is shared). *)
let best_split_for_feature data weights labels idx feature params =
  let n = Array.length idx in
  let order = Array.copy idx in
  Array.sort
    (fun a b -> compare data.(a).(feature) data.(b).(feature))
    order;
  let prefix_w = Array.make (n + 1) 0. in
  let prefix_wy = Array.make (n + 1) 0. in
  for p = 0 to n - 1 do
    let i = order.(p) in
    prefix_w.(p + 1) <- prefix_w.(p) +. weights.(i);
    prefix_wy.(p + 1) <- prefix_wy.(p) +. (weights.(i) *. labels.(i))
  done;
  let total_w = prefix_w.(n) and total_wy = prefix_wy.(n) in
  if total_w <= 0. then None
  else begin
    let base = total_wy *. total_wy /. total_w in
    let best = ref None in
    let consider p =
      (* split between positions p-1 and p *)
      if p >= params.min_samples_leaf && n - p >= params.min_samples_leaf then begin
        let vl = data.(order.(p - 1)).(feature)
        and vr = data.(order.(p)).(feature) in
        if vl < vr then begin
          let wl = prefix_w.(p) and wyl = prefix_wy.(p) in
          let wr = total_w -. wl and wyr = total_wy -. wyl in
          if wl > 0. && wr > 0. then begin
            let score = (wyl *. wyl /. wl) +. (wyr *. wyr /. wr) -. base in
            match !best with
            | Some b when b.s_gain >= score -> ()
            | Some _ | None ->
                best :=
                  Some
                    { s_feature = feature;
                      s_threshold = 0.5 *. (vl +. vr);
                      s_gain = score }
          end
        end
      end
    in
    if n <= 2 * params.n_thresholds then
      for p = 1 to n - 1 do
        consider p
      done
    else
      for q = 1 to params.n_thresholds do
        consider (q * n / (params.n_thresholds + 1))
      done;
    !best
  end

let fit ?(params = default_params) ?sample_weight (ds : Ml_dataset.t) =
  let n = Ml_dataset.n_samples ds in
  let weights = match sample_weight with Some w -> w | None -> Array.make n 1. in
  if Array.length weights <> n then
    invalid_arg "Regression_tree.fit: sample_weight length mismatch";
  let data = ds.Ml_dataset.features and labels = ds.Ml_dataset.labels in
  let leaf_value idx =
    let w = ref 0. and wy = ref 0. in
    Array.iter
      (fun i ->
        w := !w +. weights.(i);
        wy := !wy +. (weights.(i) *. labels.(i)))
      idx;
    if !w > 0. then !wy /. !w else 0.
  in
  let rec build idx depth =
    if depth >= params.max_depth || Array.length idx < 2 * params.min_samples_leaf then
      Leaf (leaf_value idx)
    else begin
      let best = ref None in
      for feature = 0 to ds.Ml_dataset.n_features - 1 do
        match best_split_for_feature data weights labels idx feature params with
        | None -> ()
        | Some s -> (
            match !best with
            | Some b when b.s_gain >= s.s_gain -> ()
            | Some _ | None -> best := Some s)
      done;
      match !best with
      | None -> Leaf (leaf_value idx)
      | Some s when s.s_gain < params.min_gain -> Leaf (leaf_value idx)
      | Some s ->
          let goes_left i = data.(i).(s.s_feature) <= s.s_threshold in
          let left_idx = Array.of_list (List.filter goes_left (Array.to_list idx)) in
          let right_idx =
            Array.of_list (List.filter (fun i -> not (goes_left i)) (Array.to_list idx))
          in
          if Array.length left_idx = 0 || Array.length right_idx = 0 then
            Leaf (leaf_value idx)
          else
            Node
              { feature = s.s_feature;
                threshold = s.s_threshold;
                gain = s.s_gain;
                left = build left_idx (depth + 1);
                right = build right_idx (depth + 1) }
    end
  in
  build (Array.init n (fun i -> i)) 0

let rec predict t x =
  match t with
  | Leaf v -> v
  | Node { feature; threshold; left; right; _ } ->
      if x.(feature) <= threshold then predict left x else predict right x

let predict_many t xs = Array.map (predict t) xs

let rec depth = function
  | Leaf _ -> 0
  | Node { left; right; _ } -> 1 + Stdlib.max (depth left) (depth right)

let rec n_leaves = function
  | Leaf _ -> 1
  | Node { left; right; _ } -> n_leaves left + n_leaves right

let feature_importance t n_features =
  let acc = Array.make n_features 0. in
  let rec walk = function
    | Leaf _ -> ()
    | Node { feature; gain; left; right; _ } ->
        if feature < n_features then acc.(feature) <- acc.(feature) +. gain;
        walk left;
        walk right
  in
  walk t;
  acc

let rec to_sexp = function
  | Leaf v -> Sexp_lite.List [ Sexp_lite.Atom "leaf"; Sexp_lite.of_float v ]
  | Node { feature; threshold; gain; left; right } ->
      Sexp_lite.List
        [ Sexp_lite.Atom "node";
          Sexp_lite.of_int feature;
          Sexp_lite.of_float threshold;
          Sexp_lite.of_float gain;
          to_sexp left;
          to_sexp right ]

let rec of_sexp v =
  match Sexp_lite.list v with
  | [ Sexp_lite.Atom "leaf"; value ] -> Leaf (Sexp_lite.float_atom value)
  | [ Sexp_lite.Atom "node"; feature; threshold; gain; left; right ] ->
      Node
        { feature = Sexp_lite.int_atom feature;
          threshold = Sexp_lite.float_atom threshold;
          gain = Sexp_lite.float_atom gain;
          left = of_sexp left;
          right = of_sexp right }
  | _ -> raise (Sexp_lite.Parse_error "malformed regression-tree encoding")
