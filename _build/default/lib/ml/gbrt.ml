type t = {
  base : float;
  learning_rate : float;
  trees : Regression_tree.t array;
  n_features : int;
}

type params = {
  n_trees : int;
  learning_rate : float;
  tree_params : Regression_tree.params;
  subsample : float;
  seed : int;
}

let default_params =
  { n_trees = 120;
    learning_rate = 0.1;
    tree_params = Regression_tree.default_params;
    subsample = 0.8;
    seed = 0 }

let fit ?(params = default_params) (ds : Ml_dataset.t) =
  let n = Ml_dataset.n_samples ds in
  let base = Granii_tensor.Vector.mean ds.Ml_dataset.labels in
  let current = Array.make n base in
  let rng = Granii_tensor.Prng.create (params.seed + 7919) in
  let trees =
    Array.init params.n_trees (fun _ ->
        let residuals =
          Array.init n (fun i -> ds.Ml_dataset.labels.(i) -. current.(i))
        in
        let residual_ds =
          Ml_dataset.make (Array.map Array.copy ds.Ml_dataset.features) residuals
        in
        let tree =
          if params.subsample >= 1. then
            Regression_tree.fit ~params:params.tree_params residual_ds
          else begin
            let k =
              Stdlib.max 2 (int_of_float (float_of_int n *. params.subsample))
            in
            let rows = Granii_tensor.Prng.sample_without_replacement rng k n in
            Regression_tree.fit ~params:params.tree_params
              (Ml_dataset.subset residual_ds rows)
          end
        in
        for i = 0 to n - 1 do
          current.(i) <-
            current.(i)
            +. (params.learning_rate
               *. Regression_tree.predict tree ds.Ml_dataset.features.(i))
        done;
        tree)
  in
  { base;
    learning_rate = params.learning_rate;
    trees;
    n_features = ds.Ml_dataset.n_features }

let predict (model : t) x =
  Array.fold_left
    (fun acc tree -> acc +. (model.learning_rate *. Regression_tree.predict tree x))
    model.base model.trees

let predict_many model xs = Array.map (predict model) xs

let n_trees model = Array.length model.trees

let feature_importance model =
  let acc = Array.make model.n_features 0. in
  Array.iter
    (fun tree ->
      let fi = Regression_tree.feature_importance tree model.n_features in
      Array.iteri (fun i g -> acc.(i) <- acc.(i) +. g) fi)
    model.trees;
  acc

let to_sexp (model : t) =
  Sexp_lite.List
    (Sexp_lite.Atom "gbrt"
    :: Sexp_lite.of_float model.base
    :: Sexp_lite.of_float model.learning_rate
    :: Sexp_lite.of_int model.n_features
    :: Array.to_list (Array.map Regression_tree.to_sexp model.trees))

let of_sexp v =
  match Sexp_lite.tagged "gbrt" v with
  | base :: learning_rate :: n_features :: trees ->
      { base = Sexp_lite.float_atom base;
        learning_rate = Sexp_lite.float_atom learning_rate;
        n_features = Sexp_lite.int_atom n_features;
        trees = Array.of_list (List.map Regression_tree.of_sexp trees) }
  | [] | [ _ ] | [ _; _ ] ->
      raise (Sexp_lite.Parse_error "malformed gbrt encoding")
