let check name truth pred =
  let n = Array.length truth in
  if n = 0 then invalid_arg (name ^ ": empty input");
  if Array.length pred <> n then invalid_arg (name ^ ": length mismatch");
  n

let rmse truth pred =
  let n = check "Ml_metrics.rmse" truth pred in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = truth.(i) -. pred.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let mae truth pred =
  let n = check "Ml_metrics.mae" truth pred in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (truth.(i) -. pred.(i))
  done;
  !acc /. float_of_int n

let mape truth pred =
  let n = check "Ml_metrics.mape" truth pred in
  let acc = ref 0. and count = ref 0 in
  for i = 0 to n - 1 do
    if truth.(i) <> 0. then begin
      acc := !acc +. Float.abs ((truth.(i) -. pred.(i)) /. truth.(i));
      incr count
    end
  done;
  if !count = 0 then 0. else !acc /. float_of_int !count

let r2 truth pred =
  let n = check "Ml_metrics.r2" truth pred in
  let mean = Granii_tensor.Vector.mean truth in
  let ss_res = ref 0. and ss_tot = ref 0. in
  for i = 0 to n - 1 do
    let r = truth.(i) -. pred.(i) and t = truth.(i) -. mean in
    ss_res := !ss_res +. (r *. r);
    ss_tot := !ss_tot +. (t *. t)
  done;
  if !ss_tot = 0. then if !ss_res = 0. then 1. else 0.
  else 1. -. (!ss_res /. !ss_tot)

(* Average ranks with ties sharing the mean of their positions. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2. in
    for p = !i to !j do
      r.(order.(p)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman truth pred =
  let n = check "Ml_metrics.spearman" truth pred in
  if n < 2 then 1.
  else begin
    let rt = ranks truth and rp = ranks pred in
    let mt = Granii_tensor.Vector.mean rt and mp = Granii_tensor.Vector.mean rp in
    let cov = ref 0. and vt = ref 0. and vp = ref 0. in
    for i = 0 to n - 1 do
      let a = rt.(i) -. mt and b = rp.(i) -. mp in
      cov := !cov +. (a *. b);
      vt := !vt +. (a *. a);
      vp := !vp +. (b *. b)
    done;
    if !vt = 0. || !vp = 0. then 0. else !cov /. sqrt (!vt *. !vp)
  end

let pairwise_ranking_accuracy truth pred =
  let n = check "Ml_metrics.pairwise_ranking_accuracy" truth pred in
  let good = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if truth.(i) <> truth.(j) then begin
        incr total;
        let t = compare truth.(i) truth.(j) and p = compare pred.(i) pred.(j) in
        if (t < 0 && p < 0) || (t > 0 && p > 0) then incr good
      end
    done
  done;
  if !total = 0 then 1. else float_of_int !good /. float_of_int !total
