(** Deterministic pseudo-random number generator (SplitMix64).

    All stochastic components (weight init, graph generators, neighborhood
    sampling, cost-model training) draw from this generator so that every
    experiment is reproducible bit-for-bit across runs and platforms,
    independent of the OCaml stdlib [Random] implementation. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val normal : t -> float
(** Standard normal via Box–Muller. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct values from
    [[0, n)]; if [k >= n] it returns all of [[0, n)] in random order. *)
