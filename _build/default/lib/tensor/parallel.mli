(** Reusable domain pool for data-parallel CPU kernels (OCaml 5 Domains).

    Every parallel region is a {e static} partition of a row (or flat index)
    range into at most [threads] chunks; each chunk is processed sequentially
    by one domain and writes a disjoint slice of the output. There is no work
    stealing and there are no atomics, so for a fixed pool the result is
    bitwise-deterministic — and because all kernels keep whole rows inside a
    single chunk, it is bitwise identical to the sequential kernel. The
    differential suite in [test/test_parallel.ml] pins exactly that.

    The pool lives in the tensor layer (not [Granii_hw]) so the dense kernels
    can use it; {!Granii_hw.Domain_pool} re-exports it as the engine's public
    front door with hardware-aware sizing. *)

type t
(** A pool of [threads - 1] long-lived worker domains plus the calling
    domain. The pool is not reentrant: kernels must only launch parallel
    regions from the domain that created the pool. *)

val create : ?threads:int -> unit -> t
(** [create ~threads ()] spawns [threads - 1] workers ([threads] is clamped
    to at least 1). Without [threads], uses the [GRANII_THREADS] environment
    variable if set, else [Domain.recommended_domain_count ()]. *)

val threads : t -> int
(** Pool width, including the calling domain. *)

val shutdown : t -> unit
(** Terminates and joins the worker domains. Idempotent. Using the pool
    afterwards raises [Invalid_argument]. *)

val default_threads : unit -> int
(** The width {!create} uses when [?threads] is omitted. *)

(** {1 Partitioners} *)

val chunks : n:int -> parts:int -> (int * int) array
(** [chunks ~n ~parts] splits [0, n) into at most [parts] equal-size
    half-open ranges [(lo, hi)]. *)

val balanced_chunks : prefix:int array -> parts:int -> (int * int) array
(** Nonzero-balanced partitioner for skewed degree distributions:
    [prefix] is a monotone prefix-weight array of length [n + 1] (a CSR
    [row_ptr] is exactly that), and the returned row ranges each carry
    roughly [prefix.(n) / parts] weight. Degenerates to {!chunks} when the
    total weight is zero. *)

(** {1 Parallel iteration} *)

val iter_chunks : t -> (int * int) array -> (int -> int -> unit) -> unit
(** [iter_chunks t ranges f] runs [f lo hi] for every range, distributing
    ranges over the pool (the caller participates). Re-raises the first
    chunk exception after all in-flight chunks finish. *)

val rows : ?pool:t -> n:int -> (int -> int -> unit) -> unit
(** [rows ?pool ~n body] is [body 0 n] when [pool] is absent (or has width
    1), and otherwise partitions [0, n) with {!chunks} across the pool.
    [body lo hi] must only touch output indices derived from rows
    [lo..hi-1]. *)

val rows_weighted : ?pool:t -> prefix:int array -> (int -> int -> unit) -> unit
(** Like {!rows} with [n = Array.length prefix - 1], but partitions with
    {!balanced_chunks} — the right iterator for CSR kernels whose per-row
    cost is the row's nonzero count. *)
