(** Semirings for generalized sparse primitives.

    DGL showed that all sparse matrix operations needed by GNNs are covered by
    generalized SpMM / SDDMM where the scalar [( + , * )] pair is replaced by
    an arbitrary semiring {m (\oplus, \otimes)} (paper, Sec. II-B). A
    semiring here is a commutative-monoid addition with identity [zero] and a
    multiplication; we do not require distributivity to be proved, only used
    consistently by kernels. *)

type t = private {
  name : string;
  zero : float;  (** identity of [add] *)
  add : float -> float -> float;
  mul : float -> float -> float;
}

val make :
  name:string -> zero:float -> add:(float -> float -> float) ->
  mul:(float -> float -> float) -> t
(** Define a custom semiring. *)

val plus_times : t
(** The standard arithmetic semiring {m (+, \times)} with zero [0.]. *)

val max_plus : t
(** Tropical semiring {m (\max, +)} with zero [neg_infinity]; used e.g. for
    longest-path style aggregations. *)

val min_plus : t
(** Tropical semiring {m (\min, +)} with zero [infinity]. *)

val max_times : t
(** {m (\max, \times)} with zero [neg_infinity]; max-pooling aggregation over
    weighted neighbors. *)

val plus_rhs : t
(** {m (+, (\_, y) \mapsto y)}: ignores the left (edge) operand and sums the
    right operand. This is the cheap aggregation used for unweighted graphs
    (paper, Appendix B): the edge value need not be read at all. *)

val or_and : t
(** Boolean semiring {m (\lor, \land)} over [{0., 1.}] (any nonzero input is
    treated as true): reachability / structural aggregations. *)

val is_plus_times : t -> bool
(** [true] iff the semiring is (pointer-)identical to {!plus_times}; kernels
    use it to dispatch to a specialized fast path. *)

val equal_name : t -> t -> bool
(** Structural identity by [name]. *)

val pp : Format.formatter -> t -> unit
