(** Dense float vectors.

    Thin helpers over [float array] used for node-wise quantities such as
    degree vectors and normalization factors ({m D^{-1/2}}). *)

type t = float array

val create : int -> float -> t
(** [create n x] is a vector of length [n] filled with [x]. *)

val init : int -> (int -> float) -> t
(** [init n f] is [| f 0; ...; f (n-1) |]. *)

val zeros : int -> t

val ones : int -> t

val dim : t -> int

val map : (float -> float) -> t -> t

val map2 : (float -> float -> float) -> t -> t -> t
(** [map2 f a b] applies [f] pointwise. Raises [Invalid_argument] on
    dimension mismatch. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val dot : t -> t -> float

val sum : t -> float

val mean : t -> float

val max : t -> float
(** Maximum element. Raises [Invalid_argument] on the empty vector. *)

val min : t -> float
(** Minimum element. Raises [Invalid_argument] on the empty vector. *)

val variance : t -> float
(** Population variance. *)

val std : t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val pow : float -> t -> t
(** [pow p v] raises every element to the power [p]. Elements equal to [0.]
    are mapped to [0.] (used for pseudo-inverse degree scalings). *)

val inv_sqrt : t -> t
(** [inv_sqrt v] is the elementwise {m x \mapsto x^{-1/2}}, mapping [0.] to
    [0.]. This is the GCN normalization vector {m D^{-1/2}}. *)

val equal_approx : ?eps:float -> t -> t -> bool
(** Pointwise comparison with absolute/relative tolerance [eps]
    (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
