type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Dense.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Dense.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      data.(base + j) <- f i j
    done
  done;
  { rows; cols; data }

let zeros rows cols = create rows cols 0.
let ones rows cols = create rows cols 1.
let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Dense.of_arrays: no rows";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Dense.of_arrays: ragged rows")
    a;
  init rows cols (fun i j -> a.(i).(j))

let of_flat ~rows ~cols data =
  if Array.length data <> rows * cols then invalid_arg "Dense.of_flat: size mismatch";
  { rows; cols; data }

(* SplitMix64-style deterministic generator so tests and benches reproduce
   across platforms regardless of the stdlib Random implementation. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform_of_state state =
  (* 53 random bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (splitmix_next state) 11 in
  Int64.to_float bits /. 9007199254740992.

let random ?(seed = 0) ?(scale = 1.) rows cols =
  let state = ref (Int64.of_int (seed + 0x1234567)) in
  init rows cols (fun _ _ -> scale *. ((2. *. uniform_of_state state) -. 1.))

let glorot ?(seed = 0) rows cols =
  let bound = sqrt (6. /. float_of_int (rows + cols)) in
  random ~seed ~scale:bound rows cols

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let dims m = (m.rows, m.cols)
let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)
let to_arrays m = Array.init m.rows (fun i -> row m i)

let matmul ?pool a b =
  if a.cols <> b.rows then invalid_arg "Dense.matmul: inner dimension mismatch";
  let m = a.rows and k = a.cols and n = b.cols in
  let out = Array.make (m * n) 0. in
  let ad = a.data and bd = b.data in
  (* i-k-j loop order: the inner loop streams over contiguous rows of B and
     the output, which is the cache-friendly order for row-major storage.
     Parallel path: output rows are partitioned statically, each computed
     exactly as in the sequential loop, so results are bitwise identical. *)
  Parallel.rows ?pool ~n:m (fun lo hi ->
      for i = lo to hi - 1 do
        let arow = i * k and orow = i * n in
        for p = 0 to k - 1 do
          let av = ad.(arow + p) in
          if av <> 0. then begin
            let brow = p * n in
            for j = 0 to n - 1 do
              out.(orow + j) <- out.(orow + j) +. (av *. bd.(brow + j))
            done
          end
        done
      done);
  { rows = m; cols = n; data = out }

let matmul_gen ?pool (sr : Semiring.t) a b =
  if Semiring.is_plus_times sr then matmul ?pool a b
  else begin
    if a.cols <> b.rows then invalid_arg "Dense.matmul_gen: inner dimension mismatch";
    let m = a.rows and k = a.cols and n = b.cols in
    let out = Array.make (m * n) sr.zero in
    let ad = a.data and bd = b.data in
    Parallel.rows ?pool ~n:m (fun lo hi ->
        for i = lo to hi - 1 do
          let arow = i * k and orow = i * n in
          for p = 0 to k - 1 do
            let av = ad.(arow + p) in
            let brow = p * n in
            for j = 0 to n - 1 do
              out.(orow + j) <- sr.add out.(orow + j) (sr.mul av bd.(brow + j))
            done
          done
        done);
    { rows = m; cols = n; data = out }
  end

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map2 ?pool f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Dense.map2: shape mismatch";
  let len = Array.length a.data in
  let out = Array.make len 0. in
  let ad = a.data and bd = b.data in
  Parallel.rows ?pool ~n:len (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- f ad.(i) bd.(i)
      done);
  { a with data = out }

let map ?pool f m =
  let len = Array.length m.data in
  let out = Array.make len 0. in
  let src = m.data in
  Parallel.rows ?pool ~n:len (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- f src.(i)
      done);
  { m with data = out }

let add ?pool a b = map2 ?pool ( +. ) a b
let sub ?pool a b = map2 ?pool ( -. ) a b
let scale ?pool s m = map ?pool (fun x -> s *. x) m
let mul_elementwise ?pool a b = map2 ?pool ( *. ) a b

let add_row_vector m v =
  if Array.length v <> m.cols then invalid_arg "Dense.add_row_vector: dimension mismatch";
  init m.rows m.cols (fun i j -> get m i j +. v.(j))

let row_broadcast ?pool d m =
  if Array.length d <> m.rows then invalid_arg "Dense.row_broadcast: dimension mismatch";
  let k = m.cols in
  let out = Array.make (m.rows * k) 0. in
  let src = m.data in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * k in
        let di = d.(i) in
        for j = 0 to k - 1 do
          out.(base + j) <- di *. src.(base + j)
        done
      done);
  { m with data = out }

let col_broadcast ?pool m d =
  if Array.length d <> m.cols then invalid_arg "Dense.col_broadcast: dimension mismatch";
  let k = m.cols in
  let out = Array.make (m.rows * k) 0. in
  let src = m.data in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * k in
        for j = 0 to k - 1 do
          out.(base + j) <- src.(base + j) *. d.(j)
        done
      done);
  { m with data = out }

let concat_cols parts =
  match parts with
  | [] -> invalid_arg "Dense.concat_cols: empty list"
  | first :: _ ->
      let rows = first.rows in
      List.iter
        (fun m ->
          if m.rows <> rows then invalid_arg "Dense.concat_cols: row count mismatch")
        parts;
      let total = List.fold_left (fun acc m -> acc + m.cols) 0 parts in
      let out = create rows total 0. in
      let offset = ref 0 in
      List.iter
        (fun m ->
          for i = 0 to rows - 1 do
            Array.blit m.data (i * m.cols) out.data ((i * total) + !offset) m.cols
          done;
          offset := !offset + m.cols)
        parts;
      out

let split_cols m parts =
  if parts <= 0 || m.cols mod parts <> 0 then
    invalid_arg "Dense.split_cols: width not divisible by parts";
  let w = m.cols / parts in
  List.init parts (fun p -> init m.rows w (fun i j -> get m i ((p * w) + j)))

let relu ?pool m = map ?pool (fun x -> if x > 0. then x else 0.) m
let sigmoid ?pool m = map ?pool (fun x -> 1. /. (1. +. exp (-.x))) m

let leaky_relu ?pool ?(slope = 0.2) m =
  map ?pool (fun x -> if x > 0. then x else slope *. x) m

let softmax_rows ?pool m =
  let out = copy m in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * m.cols in
        let mx = ref neg_infinity in
        for j = 0 to m.cols - 1 do
          if m.data.(base + j) > !mx then mx := m.data.(base + j)
        done;
        let total = ref 0. in
        for j = 0 to m.cols - 1 do
          let e = exp (m.data.(base + j) -. !mx) in
          out.data.(base + j) <- e;
          total := !total +. e
        done;
        for j = 0 to m.cols - 1 do
          out.data.(base + j) <- out.data.(base + j) /. !total
        done
      done);
  out

let log_softmax_rows ?pool m =
  let out = copy m in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * m.cols in
        let mx = ref neg_infinity in
        for j = 0 to m.cols - 1 do
          if m.data.(base + j) > !mx then mx := m.data.(base + j)
        done;
        let total = ref 0. in
        for j = 0 to m.cols - 1 do
          total := !total +. exp (m.data.(base + j) -. !mx)
        done;
        let log_z = !mx +. log !total in
        for j = 0 to m.cols - 1 do
          out.data.(base + j) <- m.data.(base + j) -. log_z
        done
      done);
  out

let sum m = Array.fold_left ( +. ) 0. m.data

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let row_sums m =
  Vector.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. get m i j
      done;
      !acc)

let col_sums m =
  let acc = Vector.zeros m.cols in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      acc.(j) <- acc.(j) +. get m i j
    done
  done;
  acc

let argmax_rows m =
  Array.init m.rows (fun i ->
      let best = ref 0 in
      for j = 1 to m.cols - 1 do
        if get m i j > get m i !best then best := j
      done;
      !best)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then infinity
  else begin
    let d = ref 0. in
    for i = 0 to Array.length a.data - 1 do
      let x = Float.abs (a.data.(i) -. b.data.(i)) in
      if x > !d then d := x
    done;
    !d
  end

let equal_approx ?(eps = 1e-8) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for i = 0 to Array.length a.data - 1 do
         let d = Float.abs (a.data.(i) -. b.data.(i)) in
         let bound =
           eps *. Float.max 1. (Float.max (Float.abs a.data.(i)) (Float.abs b.data.(i)))
         in
         if d > bound then ok := false
       done;
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to Stdlib.min (m.rows - 1) 9 do
    Format.fprintf ppf "|";
    for j = 0 to Stdlib.min (m.cols - 1) 9 do
      Format.fprintf ppf " %8.4f" (get m i j)
    done;
    if m.cols > 10 then Format.fprintf ppf " ...";
    Format.fprintf ppf " |@,"
  done;
  if m.rows > 10 then Format.fprintf ppf "... (%dx%d)@," m.rows m.cols;
  Format.fprintf ppf "@]"
