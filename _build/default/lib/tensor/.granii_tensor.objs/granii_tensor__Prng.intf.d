lib/tensor/prng.mli:
