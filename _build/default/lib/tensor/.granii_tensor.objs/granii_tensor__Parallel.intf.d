lib/tensor/parallel.mli:
