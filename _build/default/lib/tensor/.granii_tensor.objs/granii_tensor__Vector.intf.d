lib/tensor/vector.mli: Format
