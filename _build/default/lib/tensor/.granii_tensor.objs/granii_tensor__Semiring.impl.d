lib/tensor/semiring.ml: Float Format String
