lib/tensor/dense.ml: Array Float Format Int64 List Semiring Stdlib Vector
