lib/tensor/dense.ml: Array Float Format Int64 List Parallel Semiring Stdlib Vector
