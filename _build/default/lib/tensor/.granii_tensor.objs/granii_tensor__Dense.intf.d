lib/tensor/dense.mli: Format Parallel Semiring Vector
