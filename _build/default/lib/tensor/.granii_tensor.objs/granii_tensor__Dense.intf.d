lib/tensor/dense.mli: Format Semiring Vector
