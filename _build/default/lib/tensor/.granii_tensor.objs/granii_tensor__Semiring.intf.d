lib/tensor/semiring.mli: Format
