lib/tensor/parallel.ml: Array Condition Domain Mutex String Sys
