type t = float array

let create n x = Array.make n x
let init = Array.init
let zeros n = create n 0.
let ones n = create n 1.
let dim = Array.length
let map = Array.map

let map2 f a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vector.map2: dimension mismatch";
  Array.init n (fun i -> f a.(i) b.(i))

let add = map2 ( +. )
let sub = map2 ( -. )
let scale s = map (fun x -> s *. x)

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vector.dot: dimension mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let sum v = Array.fold_left ( +. ) 0. v

let mean v =
  let n = Array.length v in
  if n = 0 then 0. else sum v /. float_of_int n

let max v =
  if Array.length v = 0 then invalid_arg "Vector.max: empty vector";
  Array.fold_left Float.max v.(0) v

let min v =
  if Array.length v = 0 then invalid_arg "Vector.min: empty vector";
  Array.fold_left Float.min v.(0) v

let variance v =
  let n = Array.length v in
  if n = 0 then 0.
  else begin
    let m = mean v in
    let acc = ref 0. in
    for i = 0 to n - 1 do
      let d = v.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    !acc /. float_of_int n
  end

let std v = sqrt (variance v)
let norm2 v = sqrt (dot v v)
let pow p = map (fun x -> if x = 0. then 0. else Float.pow x p)
let inv_sqrt = pow (-0.5)

let equal_approx ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         let d = Float.abs (a.(i) -. b.(i)) in
         let bound = eps *. Float.max 1. (Float.max (Float.abs a.(i)) (Float.abs b.(i))) in
         if d > bound then ok := false
       done;
       !ok
     end

let pp ppf v =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    (Array.to_list v)
