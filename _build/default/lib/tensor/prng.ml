type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int (seed * 2654435761 + 12345)) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = mix (int64 t) }

let float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound is always far below 2^63 so
     the bias is negligible for simulation purposes. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (int64 t) 1) (Int64.of_int bound))

let bool t p = float t < p

let normal t =
  let u1 = Float.max 1e-300 (float t) in
  let u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k >= n then begin
    let all = Array.init n (fun i -> i) in
    shuffle_in_place t all;
    all
  end
  else if k * 3 > n then begin
    (* Dense regime: partial Fisher-Yates over the full range. *)
    let all = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = i + int t (n - i) in
      let tmp = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- tmp
    done;
    Array.sub all 0 k
  end
  else begin
    (* Sparse regime: rejection sampling into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = int t n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end
