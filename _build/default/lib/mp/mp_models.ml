open Mp_ast
module Dim = Granii_core.Dim

let w name = { w_name = name; w_rows = Dim.Kin; w_cols = Dim.Kout }

let gcn =
  { name = "GCN";
    program =
      Activation
        ( Granii_core.Matrix_ir.Relu,
          Scale_by_norm (Aggregate (Scale_by_norm (Linear ("W", Input)))) );
    weights = [ w "W" ];
    attention = false }

let gin =
  { name = "GIN";
    program =
      Linear
        ( "W2",
          Activation
            ( Granii_core.Matrix_ir.Relu,
              Linear ("W1", Sum [ Eps_scale Input; Aggregate Input ]) ) );
    weights =
      [ w "W1"; { w_name = "W2"; w_rows = Dim.Kout; w_cols = Dim.Kout } ];
    attention = false }

(* one hop of the symmetrically-normalized aggregation: N f = D A D f *)
let norm_hop f = Scale_by_norm (Aggregate (Scale_by_norm f))

let rec hops k f = if k = 0 then f else hops (k - 1) (norm_hop f)

let sgc_k k =
  if k < 1 then invalid_arg "Mp_models.sgc_k: k must be >= 1";
  { name = (if k = 2 then "SGC" else Printf.sprintf "SGC%d" k);
    program = Linear ("W", hops k Input);
    weights = [ w "W" ];
    attention = false }

let sgc = sgc_k 2

let tagcn_k k =
  if k < 1 then invalid_arg "Mp_models.tagcn_k: k must be >= 1";
  let terms =
    List.init (k + 1) (fun hop ->
        Linear (Printf.sprintf "W%d" hop, hops hop Input))
  in
  { name = (if k = 2 then "TAGCN" else Printf.sprintf "TAGCN%d" k);
    program = Activation (Granii_core.Matrix_ir.Relu, Sum terms);
    weights = List.init (k + 1) (fun hop -> w (Printf.sprintf "W%d" hop));
    attention = false }

let tagcn = tagcn_k 2

let gat =
  { name = "GAT";
    program =
      Activation
        ( Granii_core.Matrix_ir.Relu,
          Attention_aggregate { value = Linear ("W", Input) } );
    weights = [ w "W" ];
    attention = true }

let sage =
  { name = "SAGE";
    program =
      Activation
        ( Granii_core.Matrix_ir.Relu,
          Sum
            [ Linear ("Wself", Input);
              Linear ("Wneigh", Scale_by_inv_degree (Aggregate Input)) ] );
    weights = [ w "Wself"; w "Wneigh" ];
    attention = false }

let paper_five = [ gcn; gin; sgc; tagcn; gat ]
let all = paper_five @ [ sage ]

let find name =
  let n = String.uppercase_ascii name in
  List.find (fun m -> String.equal m.Mp_ast.name n) all
