(** The message-passing front-end language (paper, Sec. IV-B).

    GNN models are written against this small typed surface, mirroring the
    message-passing APIs of DGL / WiseGraph that GRANII's rule-based parser
    consumes. Each combinator corresponds to a framework construct:

    {v
    combinator            framework construct
    ---------------------------------------------------------------
    Aggregate             g.update_all(copy_u, sum)        (g-SpMM)
    Scale_by_norm         feat * D^{-1/2} row-broadcast
    Scale_by_inv_degree   feat * D^{-1}   row-broadcast (mean agg)
    Linear                feat @ W                          (GEMM)
    Eps_scale             (1 + eps) * feat   (GIN's self term)
    Attention             g.apply_edges(...) + edge_softmax (GAT)
    Activation            torch.relu / leaky_relu / ...
    v}

    {!Lower} translates a program into the {!Granii_core.Matrix_ir}; the
    translation is the analogue of the paper's Python-AST parser. *)

type feat =
  | Input  (** the layer's input node features {m H^{(l-1)}} ([N]x[Kin]) *)
  | Linear of string * feat
      (** [Linear (w, f)]: update {m f \cdot W_w} *)
  | Aggregate of feat
      (** neighbor sum over {m \tilde A} (adjacency with self-loops) *)
  | Scale_by_norm of feat
      (** row-scale by {m \tilde D^{-1/2}} (GCN symmetric normalization) *)
  | Scale_by_inv_degree of feat
      (** row-scale by {m \tilde D^{-1}} (mean aggregation) *)
  | Eps_scale of feat
      (** scale by the constant {m (1 + \epsilon)} diagonal (GIN) *)
  | Sum of feat list
  | Activation of Granii_core.Matrix_ir.nonlinear * feat
  | Attention_aggregate of { value : feat }
      (** GAT: compute attention scores from [value] (the updated
          embeddings {m \Theta}), edge-softmax them into {m \alpha}, and
          aggregate [value] with {m \alpha}. The sub-expression is shared
          between scoring and aggregation — exactly the reuse opportunity of
          Sec. III-B. *)

(** Shapes of the learnable weights a program references. *)
type weight_spec = {
  w_name : string;
  w_rows : Granii_core.Dim.t;
  w_cols : Granii_core.Dim.t;
}

type model = {
  name : string;
  program : feat;
  weights : weight_spec list;
  attention : bool;  (** whether the model uses attention vectors *)
}

val validate : model -> unit
(** Checks that every [Linear] weight has a spec and vice versa; raises
    [Invalid_argument] otherwise. *)

val pp_feat : Format.formatter -> feat -> unit
