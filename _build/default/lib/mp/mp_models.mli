(** The five evaluation GNN models (paper, Sec. VI-B) plus GraphSAGE,
    written in the message-passing DSL.

    Leaf-name conventions shared with {!Lower} and the executors:
    ["H"] input features, ["A"] adjacency with self-loops, ["D"] the
    symmetric normalization diagonal {m \tilde D^{-1/2}}, ["Dinv"] the mean
    normalization {m \tilde D^{-1}}, ["EpsI"] GIN's constant
    {m (1+\epsilon) I}, ["Asrc"]/["Adst"] GAT's attention vectors, and
    weights by their spec names. *)

val gcn : Mp_ast.model
(** Kipf & Welling GCN: {m \sigma(\tilde D^{-1/2} \tilde A \tilde D^{-1/2}
    H W)}. *)

val gin : Mp_ast.model
(** Graph Isomorphism Network:
    {m \mathrm{MLP}\big((1+\epsilon) H + \tilde A H\big)} with a two-layer
    MLP. *)

val sgc : Mp_ast.model
(** Simple Graph Convolution with {m K = 2} hops: {m \tilde N^2 H W}. *)

val sgc_k : int -> Mp_ast.model
(** SGC with an arbitrary hop count {m K \ge 1}:
    {m \tilde N^K H W}. [sgc_k 2 = sgc]. Raises [Invalid_argument] if
    [k < 1]. *)

val tagcn : Mp_ast.model
(** Topology-Adaptive GCN with hops 0..2:
    {m \sigma(\sum_k \tilde N^k H W_k)}. *)

val tagcn_k : int -> Mp_ast.model
(** TAGCN with hops {m 0..K}, each with its own weight. [tagcn_k 2 = tagcn].
    Raises [Invalid_argument] if [k < 1]. *)

val gat : Mp_ast.model
(** Graph Attention Network (single head):
    {m \sigma(\alpha \cdot H W)} with {m \alpha} from edge attention. *)

val sage : Mp_ast.model
(** GraphSAGE with GCN/mean aggregation (used with neighborhood sampling):
    {m \sigma(H W_{self} + \tilde D^{-1} \tilde A H W_{neigh})}. *)

val all : Mp_ast.model list
(** [gcn; gin; sgc; tagcn; gat] — the paper's evaluation set, in its order —
    plus [sage]. *)

val paper_five : Mp_ast.model list
(** Only the five models of Table III. *)

val find : string -> Mp_ast.model
(** Case-insensitive lookup by name. Raises [Not_found]. *)
