(** Lowering from the message-passing DSL to the matrix IR (paper,
    Sec. IV-B "Code Translation").

    The rule-based translation: graph operations become sparse-matrix
    multiplications, dense framework ops become GEMMs / broadcasts, and the
    result is flattened so associative chains sit at one level. The lowering
    also reports which diagonal leaves are normalization vectors that the
    executing system must compute from the graph (the [Degree] step), and
    which leaves are model parameters. *)

type lowered = {
  ir : Granii_core.Matrix_ir.expr;
  norm_leaves : string list;
      (** diagonal leaves derived from graph degrees (["D"], ["Dinv"]) —
          to be paired with the host system's degree-kernel kind *)
  param_leaves : Granii_core.Matrix_ir.leaf list;
      (** weight matrices and attention vectors, with shapes *)
}

val lower : Mp_ast.model -> lowered
(** Validates the model, then translates. The returned IR is flattened and
    well-formed ([Granii_core.Matrix_ir.infer] succeeds). *)

val degree_leaves :
  lowered -> binned:bool -> (string * Granii_core.Plan.degree_spec) list
(** Pairs every normalization leaf with the given degree-kernel kind and its
    power (["Dinv"] uses {m \tilde D^{-1}}, everything else
    {m \tilde D^{-1/2}}), in the form {!Granii_core.Plan.of_tree}
    expects. *)
