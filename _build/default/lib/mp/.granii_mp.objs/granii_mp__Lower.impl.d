lib/mp/lower.ml: Granii_core List Mp_ast String
