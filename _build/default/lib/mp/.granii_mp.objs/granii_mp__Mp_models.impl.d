lib/mp/mp_models.ml: Granii_core List Mp_ast Printf String
