lib/mp/lower.mli: Granii_core Mp_ast
