lib/mp/mp_ast.mli: Format Granii_core
