lib/mp/mp_models.mli: Mp_ast
