lib/mp/mp_ast.ml: Format Granii_core List Printf
