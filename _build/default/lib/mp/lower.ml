module Ir = Granii_core.Matrix_ir
module Dim = Granii_core.Dim

type lowered = {
  ir : Ir.expr;
  norm_leaves : string list;
  param_leaves : Ir.leaf list;
}

let h_leaf = Ir.features "H"
let a_leaf = Ir.adjacency "A"
let d_leaf = Ir.diagonal "D"
let dinv_leaf = Ir.diagonal "Dinv"
let eps_leaf = Ir.diagonal "EpsI"

let attn_src = { Ir.name = "Asrc"; rows = Dim.Kout; cols = Dim.One; attr = Ir.Dense Ir.Weight }
let attn_dst = { Ir.name = "Adst"; rows = Dim.Kout; cols = Dim.One; attr = Ir.Dense Ir.Weight }

let as_chain = function Ir.Mult es -> es | e -> [ e ]

let lower (model : Mp_ast.model) =
  Mp_ast.validate model;
  let norm_leaves = ref [] in
  let note_norm name = if not (List.mem name !norm_leaves) then norm_leaves := name :: !norm_leaves in
  let weight_leaf name =
    let spec = List.find (fun s -> String.equal s.Mp_ast.w_name name) model.Mp_ast.weights in
    { Ir.name; rows = spec.Mp_ast.w_rows; cols = spec.Mp_ast.w_cols; attr = Ir.Dense Ir.Weight }
  in
  let rec go = function
    | Mp_ast.Input -> Ir.Leaf h_leaf
    | Mp_ast.Linear (name, f) -> Ir.Mult [ go f; Ir.Leaf (weight_leaf name) ]
    | Mp_ast.Aggregate f -> Ir.Mult [ Ir.Leaf a_leaf; go f ]
    | Mp_ast.Scale_by_norm f ->
        note_norm "D";
        Ir.Row_broadcast (Ir.Leaf d_leaf, go f)
    | Mp_ast.Scale_by_inv_degree f ->
        note_norm "Dinv";
        Ir.Row_broadcast (Ir.Leaf dinv_leaf, go f)
    | Mp_ast.Eps_scale f -> Ir.Row_broadcast (Ir.Leaf eps_leaf, go f)
    | Mp_ast.Sum fs -> Ir.Add (List.map go fs)
    | Mp_ast.Activation (kind, f) -> Ir.Nonlinear (kind, go f)
    | Mp_ast.Attention_aggregate { value } ->
        let theta = go value in
        let alpha =
          Ir.Nonlinear
            ( Ir.Edge_softmax,
              Ir.Edge_score
                { mask = Ir.Leaf a_leaf; feats = theta; attn_src; attn_dst } )
        in
        (* Splice theta's own chain into the aggregation so re-association
           can place the update GEMM before or after the SpMM (Sec. III-B). *)
        Ir.Mult (alpha :: as_chain theta)
  in
  let ir = Granii_core.Rewrite.flatten (go model.Mp_ast.program) in
  ignore (Ir.infer ir);
  let param_leaves =
    let weights = List.map (fun s -> weight_leaf s.Mp_ast.w_name) model.Mp_ast.weights in
    if model.Mp_ast.attention then weights @ [ attn_src; attn_dst ] else weights
  in
  { ir; norm_leaves = List.rev !norm_leaves; param_leaves }

let degree_leaves lowered ~binned =
  List.map
    (fun name ->
      let power =
        if String.equal name "Dinv" then Granii_core.Primitive.Inv
        else Granii_core.Primitive.Inv_sqrt
      in
      (name, { Granii_core.Plan.binned; power }))
    lowered.norm_leaves
