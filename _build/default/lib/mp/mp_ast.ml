type feat =
  | Input
  | Linear of string * feat
  | Aggregate of feat
  | Scale_by_norm of feat
  | Scale_by_inv_degree of feat
  | Eps_scale of feat
  | Sum of feat list
  | Activation of Granii_core.Matrix_ir.nonlinear * feat
  | Attention_aggregate of { value : feat }

type weight_spec = {
  w_name : string;
  w_rows : Granii_core.Dim.t;
  w_cols : Granii_core.Dim.t;
}

type model = {
  name : string;
  program : feat;
  weights : weight_spec list;
  attention : bool;
}

let rec used_weights = function
  | Input -> []
  | Linear (w, f) -> w :: used_weights f
  | Aggregate f | Scale_by_norm f | Scale_by_inv_degree f | Eps_scale f
  | Activation (_, f) ->
      used_weights f
  | Sum fs -> List.concat_map used_weights fs
  | Attention_aggregate { value } -> used_weights value

let validate model =
  let used = List.sort_uniq compare (used_weights model.program) in
  let declared = List.sort_uniq compare (List.map (fun s -> s.w_name) model.weights) in
  List.iter
    (fun w ->
      if not (List.mem w declared) then
        invalid_arg (Printf.sprintf "Mp_ast.validate: weight %s has no spec" w))
    used;
  List.iter
    (fun w ->
      if not (List.mem w used) then
        invalid_arg (Printf.sprintf "Mp_ast.validate: unused weight spec %s" w))
    declared

let rec pp_feat ppf = function
  | Input -> Format.fprintf ppf "h"
  | Linear (w, f) -> Format.fprintf ppf "linear(%s, %a)" w pp_feat f
  | Aggregate f -> Format.fprintf ppf "update_all(copy_u, sum)(%a)" pp_feat f
  | Scale_by_norm f -> Format.fprintf ppf "norm(%a)" pp_feat f
  | Scale_by_inv_degree f -> Format.fprintf ppf "mean_norm(%a)" pp_feat f
  | Eps_scale f -> Format.fprintf ppf "eps_scale(%a)" pp_feat f
  | Sum fs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
           pp_feat)
        fs
  | Activation (k, f) ->
      Format.fprintf ppf "%a(%a)" Granii_core.Matrix_ir.pp_nonlinear k pp_feat f
  | Attention_aggregate { value } ->
      Format.fprintf ppf "gat_aggregate(%a)" pp_feat value
