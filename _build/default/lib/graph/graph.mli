(** Graphs as (unweighted, square) CSR adjacency matrices.

    Evaluation graphs in the paper are undirected and unweighted
    (Sec. VI-B); the adjacency used by GNN models is {m \tilde A = A + I}
    (self-loops added), and the GCN normalization vector is
    {m \tilde D^{-1/2}}. *)

type t = private {
  name : string;
  adj : Granii_sparse.Csr.t;  (** unweighted adjacency, no self-loops *)
}

val make : name:string -> Granii_sparse.Csr.t -> t
(** Wraps an adjacency matrix. Raises [Invalid_argument] if it is not square.
    Values, if any, are dropped — graphs here are structural. *)

val of_edges : name:string -> n:int -> (int * int) list -> t
(** Builds an undirected graph from an edge list (both directions stored,
    duplicates and self-loops removed). *)

val n_nodes : t -> int

val n_edges : t -> int
(** Number of {e stored directed} entries (an undirected edge counts twice),
    matching how the paper's tables report "Edges"/non-zeros. *)

val density : t -> float
(** [n_edges / (n_nodes^2)]. *)

val avg_degree : t -> float

val max_degree : t -> int

val with_self_loops : t -> Granii_sparse.Csr.t
(** {m \tilde A = A + I}, unweighted. *)

val degrees_tilde : t -> Granii_tensor.Vector.t
(** Degrees of {m \tilde A} (each node's degree + 1) as floats. *)

val norm_inv_sqrt : t -> Granii_tensor.Vector.t
(** {m \tilde D^{-1/2}}: the GCN normalization vector. *)

val is_symmetric : t -> bool

val pp : Format.formatter -> t -> unit
