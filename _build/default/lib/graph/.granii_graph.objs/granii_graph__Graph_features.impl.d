lib/graph/graph_features.ml: Array Format Granii_sparse Granii_tensor Graph
