lib/graph/sampling.mli: Graph
