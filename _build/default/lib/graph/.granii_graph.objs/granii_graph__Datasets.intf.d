lib/graph/datasets.mli: Graph Lazy
