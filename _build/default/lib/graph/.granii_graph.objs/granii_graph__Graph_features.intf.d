lib/graph/graph_features.mli: Format Graph
