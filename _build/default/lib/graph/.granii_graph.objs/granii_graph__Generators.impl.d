lib/graph/generators.ml: Array Granii_tensor Graph Hashtbl List Printf
