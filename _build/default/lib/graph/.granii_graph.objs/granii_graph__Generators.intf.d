lib/graph/generators.mli: Graph
