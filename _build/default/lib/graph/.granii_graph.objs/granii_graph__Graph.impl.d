lib/graph/graph.ml: Array Format Granii_sparse Granii_tensor List
