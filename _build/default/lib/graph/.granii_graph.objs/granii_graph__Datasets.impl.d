lib/graph/datasets.ml: Generators Graph Lazy List String
