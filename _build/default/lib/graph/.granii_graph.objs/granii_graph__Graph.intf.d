lib/graph/graph.mli: Format Granii_sparse Granii_tensor
