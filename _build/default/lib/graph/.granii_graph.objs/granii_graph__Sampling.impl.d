lib/graph/sampling.ml: Array Granii_sparse Granii_tensor Graph Hashtbl Printf
