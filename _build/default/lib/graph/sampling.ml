module Csr = Granii_sparse.Csr
module Coo = Granii_sparse.Coo
module Prng = Granii_tensor.Prng

let neighborhood ?(seed = 0) ~fanout (g : Graph.t) =
  if fanout <= 0 then invalid_arg "Sampling.neighborhood: fanout must be positive";
  let rng = Prng.create (seed + 909) in
  let adj = g.Graph.adj in
  let n = Graph.n_nodes g in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let lo = adj.Csr.row_ptr.(i) in
    let deg = adj.Csr.row_ptr.(i + 1) - lo in
    if deg <= fanout then
      for p = lo to lo + deg - 1 do
        entries := (i, adj.Csr.col_idx.(p), 1.) :: !entries
      done
    else begin
      let picks = Prng.sample_without_replacement rng fanout deg in
      Array.iter (fun off -> entries := (i, adj.Csr.col_idx.(lo + off), 1.) :: !entries) picks
    end
  done;
  let coo = Coo.make ~n_rows:n ~n_cols:n (Array.of_list !entries) in
  Graph.make
    ~name:(Printf.sprintf "%s_fanout%d_seed%d" g.Graph.name fanout seed)
    (Csr.of_coo ~keep_values:false coo)

let induced_subgraph (g : Graph.t) nodes =
  let k = Array.length nodes in
  let index = Hashtbl.create k in
  Array.iteri
    (fun new_id old_id ->
      if Hashtbl.mem index old_id then
        invalid_arg "Sampling.induced_subgraph: duplicate node id";
      Hashtbl.add index old_id new_id)
    nodes;
  let entries = ref [] in
  Array.iteri
    (fun new_src old_src ->
      let adj = g.Graph.adj in
      for p = adj.Csr.row_ptr.(old_src) to adj.Csr.row_ptr.(old_src + 1) - 1 do
        match Hashtbl.find_opt index adj.Csr.col_idx.(p) with
        | Some new_dst -> entries := (new_src, new_dst, 1.) :: !entries
        | None -> ()
      done)
    nodes;
  let coo = Coo.make ~n_rows:k ~n_cols:k (Array.of_list !entries) in
  Graph.make ~name:(g.Graph.name ^ "_induced") (Csr.of_coo ~keep_values:false coo)

let random_nodes ?(seed = 0) (g : Graph.t) k =
  let rng = Prng.create (seed + 808) in
  Prng.sample_without_replacement rng k (Graph.n_nodes g)
