(** The evaluation graph suite (paper, Table II) as synthetic stand-ins.

    The paper's six graphs (1M–126M non-zeros) are not redistributable and
    exceed pure-OCaml kernel throughput, so each is replaced by a generator
    from the same structural family, scaled down ~30–300x while preserving
    the property GRANII's decisions depend on: where the graph sits on the
    density/degree-skew spectrum. Paper sizes are kept as metadata so
    benches can report both. *)

type t = {
  key : string;           (** paper's two-letter code, e.g. ["RD"] *)
  paper_name : string;    (** e.g. ["Reddit"] *)
  paper_nodes : int;
  paper_edges : int;
  family : string;        (** structural family of the stand-in *)
  node_feat_dim : int;    (** raw node-feature width for end-to-end runs *)
  n_classes : int;        (** label count for end-to-end runs *)
  graph : Graph.t Lazy.t; (** the stand-in, built on first use *)
}

val reddit : t
(** [RD] — dense power-law social graph (RMAT). *)

val com_amazon : t
(** [CA] — sparse co-purchase network (preferential attachment). *)

val mycielskian : t
(** [MC] — very dense, regular Mycielskian graph (exact construction,
    fewer levels). *)

val belgium_osm : t
(** [BL] — road network (2-D lattice with shortcuts). *)

val coauthors_citeseer : t
(** [AU] — co-authorship network (preferential attachment). *)

val ogbn_products : t
(** [OP] — large co-purchase power-law graph (RMAT). *)

val all : t list
(** The suite in the paper's table order: RD CA MC BL AU OP. *)

val find : string -> t
(** Lookup by [key] (case-insensitive). Raises [Not_found]. *)

val load : t -> Graph.t
(** Forces the generator (memoized). *)

val training_pool : ?seed:int -> unit -> Graph.t list
(** Disjoint-from-evaluation graphs used to profile primitives and train the
    cost models (paper, Sec. V: SuiteSparse graphs varied by sampling — here,
    the same generator families with different seeds and sizes). *)
