module Csr = Granii_sparse.Csr
module Coo = Granii_sparse.Coo
module Vector = Granii_tensor.Vector

type t = { name : string; adj : Csr.t }

let make ~name adj =
  if adj.Csr.n_rows <> adj.Csr.n_cols then invalid_arg "Graph.make: adjacency must be square";
  { name; adj = Csr.drop_values adj }

let of_edges ~name ~n edges =
  let directed =
    List.concat_map
      (fun (s, d) -> if s = d then [] else [ (s, d); (d, s) ])
      edges
  in
  let coo = Coo.of_edges ~n directed in
  make ~name (Csr.of_coo ~keep_values:false coo)

let n_nodes g = g.adj.Csr.n_rows
let n_edges g = Csr.nnz g.adj

let density g =
  let n = float_of_int (n_nodes g) in
  if n = 0. then 0. else float_of_int (n_edges g) /. (n *. n)

let avg_degree g =
  let n = n_nodes g in
  if n = 0 then 0. else float_of_int (n_edges g) /. float_of_int n

let max_degree g = Array.fold_left max 0 (Csr.row_degrees g.adj)

let with_self_loops g =
  let n = n_nodes g in
  let entries = ref [] in
  Csr.iter (fun i j _ -> entries := (i, j, 1.) :: !entries) g.adj;
  for i = 0 to n - 1 do
    entries := (i, i, 1.) :: !entries
  done;
  Csr.of_coo ~keep_values:false (Coo.make ~n_rows:n ~n_cols:n (Array.of_list !entries))

let degrees_tilde g =
  let deg = Csr.row_degrees g.adj in
  Vector.init (n_nodes g) (fun i -> float_of_int (deg.(i) + 1))

let norm_inv_sqrt g = Vector.inv_sqrt (degrees_tilde g)

let is_symmetric g =
  let t = Csr.transpose g.adj in
  Csr.equal_structure g.adj t

let pp ppf g =
  Format.fprintf ppf "%s: n=%d nnz=%d avg_deg=%.1f" g.name (n_nodes g) (n_edges g)
    (avg_degree g)
