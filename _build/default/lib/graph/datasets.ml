type t = {
  key : string;
  paper_name : string;
  paper_nodes : int;
  paper_edges : int;
  family : string;
  node_feat_dim : int;
  n_classes : int;
  graph : Graph.t Lazy.t;
}

let rename name g = Graph.make ~name g.Graph.adj

let reddit =
  { key = "RD";
    paper_name = "Reddit";
    paper_nodes = 232_965;
    paper_edges = 114_615_892;
    family = "dense power-law (RMAT)";
    node_feat_dim = 602;
    n_classes = 41;
    graph =
      lazy (rename "RD" (Generators.rmat ~seed:7 ~scale:12 ~edge_factor:96 ())) }

let com_amazon =
  { key = "CA";
    paper_name = "com-Amazon";
    paper_nodes = 334_863;
    paper_edges = 2_186_607;
    family = "sparse co-purchase (preferential attachment)";
    node_feat_dim = 100;
    n_classes = 47;
    graph =
      lazy (rename "CA" (Generators.barabasi_albert ~seed:11 ~n:8192 ~m:3 ())) }

let mycielskian =
  { key = "MC";
    paper_name = "mycielskian17";
    paper_nodes = 98_303;
    paper_edges = 100_245_742;
    family = "dense Mycielskian (exact construction)";
    node_feat_dim = 100;
    n_classes = 10;
    graph = lazy (rename "MC" (Generators.mycielskian ~levels:12 ())) }

let belgium_osm =
  { key = "BL";
    paper_name = "belgium_osm";
    paper_nodes = 1_441_295;
    paper_edges = 4_541_235;
    family = "road network (lattice + shortcuts)";
    node_feat_dim = 64;
    n_classes = 8;
    graph = lazy (rename "BL" (Generators.grid2d ~seed:13 ~rows:128 ~cols:96 ())) }

let coauthors_citeseer =
  { key = "AU";
    paper_name = "coAuthorsCiteseer";
    paper_nodes = 227_320;
    paper_edges = 1_855_588;
    family = "co-authorship (preferential attachment)";
    node_feat_dim = 64;
    n_classes = 6;
    graph =
      lazy (rename "AU" (Generators.barabasi_albert ~seed:17 ~n:4096 ~m:4 ())) }

let ogbn_products =
  { key = "OP";
    paper_name = "ogbn-products";
    paper_nodes = 2_449_029;
    paper_edges = 126_167_053;
    family = "large co-purchase power-law (RMAT)";
    node_feat_dim = 100;
    n_classes = 47;
    graph =
      lazy (rename "OP" (Generators.rmat ~seed:19 ~scale:13 ~edge_factor:32 ())) }

let all =
  [ reddit; com_amazon; mycielskian; belgium_osm; coauthors_citeseer; ogbn_products ]

let find key =
  let k = String.uppercase_ascii key in
  List.find (fun d -> String.equal d.key k) all

let load d = Lazy.force d.graph

let training_pool ?(seed = 42) () =
  (* Same families as the evaluation suite, different seeds/sizes — no graph
     overlaps with the test set (paper, Sec. V). *)
  let s k = seed + k in
  [ Generators.erdos_renyi ~seed:(s 1) ~n:1024 ~avg_degree:8. ();
    Generators.erdos_renyi ~seed:(s 2) ~n:2048 ~avg_degree:32. ();
    Generators.erdos_renyi ~seed:(s 3) ~n:4096 ~avg_degree:4. ();
    Generators.barabasi_albert ~seed:(s 4) ~n:2048 ~m:2 ();
    Generators.barabasi_albert ~seed:(s 5) ~n:4096 ~m:8 ();
    Generators.barabasi_albert ~seed:(s 6) ~n:1024 ~m:16 ();
    Generators.rmat ~seed:(s 7) ~scale:10 ~edge_factor:16 ();
    Generators.rmat ~seed:(s 8) ~scale:11 ~edge_factor:48 ();
    Generators.rmat ~seed:(s 9) ~scale:12 ~edge_factor:8 ();
    Generators.grid2d ~seed:(s 10) ~rows:64 ~cols:64 ();
    Generators.grid2d ~seed:(s 11) ~rows:32 ~cols:128 ();
    Generators.mycielskian ~levels:10 ();
    Generators.mycielskian ~levels:11 ();
    Generators.star ~n:2048;
    Generators.ring ~n:4096 ]
