(** Neighborhood sampling (paper, Sec. VI-E; GraphSAGE, Hamilton et al.).

    Node-wise fanout sampling: every node keeps at most [fanout] of its
    neighbors, chosen uniformly without replacement. The sampled graph keeps
    the node set (so embedding matrices keep their shape) and is generally
    {e directed} — the sampling decision is per destination node. *)

val neighborhood : ?seed:int -> fanout:int -> Graph.t -> Graph.t
(** [neighborhood ~fanout g] keeps at most [fanout] in-edges per node.
    Deterministic in [seed] (default [0]). Raises [Invalid_argument] if
    [fanout <= 0]. *)

val induced_subgraph : Graph.t -> int array -> Graph.t
(** [induced_subgraph g nodes] restricts [g] to the given node subset,
    relabeling nodes to [0 .. Array.length nodes - 1]. Duplicate node ids are
    rejected with [Invalid_argument]. *)

val random_nodes : ?seed:int -> Graph.t -> int -> int array
(** [random_nodes g k] draws [k] distinct node ids uniformly. *)
