(** Coordinate-format sparse matrices.

    COO is the construction format: graph generators and loaders emit edge
    triples here, which are then sorted, deduplicated, and converted to
    {!Csr.t} for computation. *)

type t = private {
  n_rows : int;
  n_cols : int;
  entries : (int * int * float) array;  (** (row, col, value) triples *)
}

val make : n_rows:int -> n_cols:int -> (int * int * float) array -> t
(** Validates bounds, sorts entries by (row, col), and sums duplicates.
    Raises [Invalid_argument] on an out-of-bounds index. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds an [n]x[n] unweighted (value [1.]) matrix from
    directed edge pairs, deduplicating. *)

val symmetrize : t -> t
(** Adds the transpose of every entry (summing duplicates once), producing an
    undirected adjacency structure. *)

val nnz : t -> int

val transpose : t -> t

val to_dense : t -> Granii_tensor.Dense.t
