type t = {
  n_rows : int;
  n_cols : int;
  entries : (int * int * float) array;
}

let compare_pos (r1, c1, _) (r2, c2, _) =
  match compare (r1 : int) r2 with 0 -> compare (c1 : int) c2 | c -> c

let make ~n_rows ~n_cols entries =
  Array.iter
    (fun (r, c, _) ->
      if r < 0 || r >= n_rows || c < 0 || c >= n_cols then
        invalid_arg
          (Printf.sprintf "Coo.make: entry (%d, %d) out of bounds for %dx%d" r c n_rows
             n_cols))
    entries;
  let sorted = Array.copy entries in
  Array.sort compare_pos sorted;
  (* Sum duplicate positions. *)
  let out = ref [] in
  let n = Array.length sorted in
  let i = ref 0 in
  while !i < n do
    let r, c, v = sorted.(!i) in
    let acc = ref v in
    incr i;
    while
      !i < n
      &&
      let r', c', _ = sorted.(!i) in
      r' = r && c' = c
    do
      let _, _, v' = sorted.(!i) in
      acc := !acc +. v';
      incr i
    done;
    out := (r, c, !acc) :: !out
  done;
  { n_rows; n_cols; entries = Array.of_list (List.rev !out) }

let of_edges ~n edges =
  make ~n_rows:n ~n_cols:n
    (Array.of_list (List.map (fun (s, d) -> (s, d, 1.)) edges))
  |> fun coo ->
  (* Deduplicated sums can exceed 1.0 for repeated edges; clamp back to the
     unweighted value. *)
  { coo with entries = Array.map (fun (r, c, _) -> (r, c, 1.)) coo.entries }

let symmetrize coo =
  (* Union of the structure of A and A^T: where both (i, j) and (j, i) exist,
     the value of the original orientation wins, so symmetrizing an already
     symmetric matrix is the identity. *)
  let tagged =
    Array.concat
      [ Array.map (fun (r, c, v) -> (r, c, 0, v)) coo.entries;
        Array.map (fun (r, c, v) -> (c, r, 1, v)) coo.entries ]
  in
  Array.sort
    (fun (r1, c1, t1, _) (r2, c2, t2, _) ->
      match compare (r1 : int) r2 with
      | 0 -> ( match compare (c1 : int) c2 with 0 -> compare (t1 : int) t2 | c -> c)
      | c -> c)
    tagged;
  let out = ref [] in
  let n = Array.length tagged in
  let i = ref 0 in
  while !i < n do
    let r, c, _, v = tagged.(!i) in
    out := (r, c, v) :: !out;
    incr i;
    while
      !i < n
      &&
      let r', c', _, _ = tagged.(!i) in
      r' = r && c' = c
    do
      incr i
    done
  done;
  { n_rows = coo.n_rows;
    n_cols = coo.n_cols;
    entries = Array.of_list (List.rev !out) }

let nnz coo = Array.length coo.entries

let transpose coo =
  make ~n_rows:coo.n_cols ~n_cols:coo.n_rows
    (Array.map (fun (r, c, v) -> (c, r, v)) coo.entries)

let to_dense coo =
  let d = Granii_tensor.Dense.zeros coo.n_rows coo.n_cols in
  Array.iter (fun (r, c, v) -> Granii_tensor.Dense.set d r c v) coo.entries;
  d
