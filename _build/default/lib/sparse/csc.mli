(** Compressed-sparse-column matrices.

    The column-major dual of {!Csr}. GRANII's paper treats sparse {e format}
    selection as orthogonal related work (Qiu et al., WISE); this module
    provides the substrate for that dimension: the same g-SpMM computed from
    CSC has a scatter (column-driven) access pattern whose profitability
    depends on the transpose's degree skew. *)

type t = private {
  n_rows : int;
  n_cols : int;
  col_ptr : int array;         (** length [n_cols + 1] *)
  row_idx : int array;         (** length [nnz], row indices, sorted per column *)
  values : float array option; (** [None] = unweighted *)
}

val of_csr : Csr.t -> t
(** O(nnz) conversion preserving values. *)

val to_csr : t -> Csr.t

val nnz : t -> int

val is_weighted : t -> bool

val get : t -> int -> int -> float
(** Entry at [(i, j)], [0.] if absent (binary search within the column). *)

val to_dense : t -> Granii_tensor.Dense.t

val spmm : t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t
(** {m A \cdot B} evaluated column-by-column with scatter-adds into the
    output — the access pattern a GPU would implement with atomics. Equals
    [Spmm.run (to_csr a) b] numerically. *)

val equal_approx : ?eps:float -> t -> t -> bool
