module Vector = Granii_tensor.Vector
module Parallel = Granii_tensor.Parallel

let scale_rows ?pool d (a : Csr.t) =
  if Array.length d <> a.Csr.n_rows then
    invalid_arg "Sparse_ops.scale_rows: dimension mismatch";
  let count = Csr.nnz a in
  let out = Array.make count 0. in
  Parallel.rows_weighted ?pool ~prefix:a.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
          out.(p) <- d.(i) *. Csr.value a p
        done
      done);
  Csr.with_values a out

let scale_cols ?pool (a : Csr.t) d =
  if Array.length d <> a.Csr.n_cols then
    invalid_arg "Sparse_ops.scale_cols: dimension mismatch";
  let count = Csr.nnz a in
  let out = Array.make count 0. in
  (* value-parallel, not row-parallel: the entry stream is the only index *)
  Parallel.rows ?pool ~n:count (fun lo hi ->
      for p = lo to hi - 1 do
        out.(p) <- Csr.value a p *. d.(a.Csr.col_idx.(p))
      done);
  Csr.with_values a out

let scale_bilateral ?pool dl (a : Csr.t) dr = Sddmm.rank1 ?pool a dl dr

let add (a : Csr.t) (b : Csr.t) =
  if a.Csr.n_rows <> b.Csr.n_rows || a.Csr.n_cols <> b.Csr.n_cols then
    invalid_arg "Sparse_ops.add: shape mismatch";
  let entries = ref [] in
  Csr.iter (fun i j v -> entries := (i, j, v) :: !entries) a;
  Csr.iter (fun i j v -> entries := (i, j, v) :: !entries) b;
  Csr.of_coo
    (Coo.make ~n_rows:a.Csr.n_rows ~n_cols:a.Csr.n_cols (Array.of_list !entries))

let row_softmax ?pool (a : Csr.t) =
  let count = Csr.nnz a in
  let out = Array.make count 0. in
  Parallel.rows_weighted ?pool ~prefix:a.Csr.row_ptr (fun rlo rhi ->
      for i = rlo to rhi - 1 do
        let lo = a.Csr.row_ptr.(i) and hi = a.Csr.row_ptr.(i + 1) - 1 in
        if hi >= lo then begin
          let mx = ref neg_infinity in
          for p = lo to hi do
            if Csr.value a p > !mx then mx := Csr.value a p
          done;
          let total = ref 0. in
          for p = lo to hi do
            let e = exp (Csr.value a p -. !mx) in
            out.(p) <- e;
            total := !total +. e
          done;
          for p = lo to hi do
            out.(p) <- out.(p) /. !total
          done
        end
      done);
  Csr.with_values a out

let row_sums (a : Csr.t) =
  Vector.init a.Csr.n_rows (fun i ->
      let acc = ref 0. in
      for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
        acc := !acc +. Csr.value a p
      done;
      !acc)

let weighted_degrees = row_sums

let binned_degrees (a : Csr.t) =
  (* Semantically a scatter-add over destination bins, exactly what
     WiseGraph's binning function computes. Sequentially there is no atomic
     cost; the hardware model charges contention for it on GPUs. *)
  let bins = Vector.zeros a.Csr.n_rows in
  for i = 0 to a.Csr.n_rows - 1 do
    for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
      ignore p;
      bins.(i) <- bins.(i) +. 1.
    done
  done;
  bins
