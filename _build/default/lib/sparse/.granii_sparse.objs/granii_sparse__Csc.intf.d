lib/sparse/csc.mli: Csr Granii_tensor
