lib/sparse/coo.ml: Array Granii_tensor List Printf
