lib/sparse/sddmm.mli: Csr Granii_tensor
