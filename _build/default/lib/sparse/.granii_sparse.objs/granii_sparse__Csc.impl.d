lib/sparse/csc.ml: Array Csr Granii_tensor
