lib/sparse/sparse_ops.ml: Array Coo Csr Granii_tensor Sddmm
