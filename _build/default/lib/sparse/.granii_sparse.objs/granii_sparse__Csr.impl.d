lib/sparse/csr.ml: Array Coo Float Format Granii_tensor
