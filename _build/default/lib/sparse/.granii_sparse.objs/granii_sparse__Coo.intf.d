lib/sparse/coo.mli: Granii_tensor
