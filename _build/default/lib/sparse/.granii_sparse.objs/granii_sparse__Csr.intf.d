lib/sparse/csr.mli: Coo Format Granii_tensor
