lib/sparse/spmm.mli: Csr Granii_tensor
