lib/sparse/sparse_ops.mli: Csr Granii_tensor
