lib/sparse/spmm.ml: Array Csr Granii_tensor
