lib/sparse/sddmm.ml: Array Csr Granii_tensor
