module Dense = Granii_tensor.Dense
module Semiring = Granii_tensor.Semiring
module Parallel = Granii_tensor.Parallel

(* All kernels chunk mask rows with the nonzero-balanced partitioner; each
   stored position (and so each output slot) belongs to exactly one chunk,
   keeping the parallel result bitwise identical to the sequential one. *)

let run ?(semiring = Semiring.plus_times) ?pool (mask : Csr.t) (a : Dense.t) (b : Dense.t) =
  if a.Dense.rows <> mask.Csr.n_rows then
    invalid_arg "Sddmm.run: A row count must match mask rows";
  if b.Dense.cols <> mask.Csr.n_cols then
    invalid_arg "Sddmm.run: B column count must match mask cols";
  if a.Dense.cols <> b.Dense.rows then invalid_arg "Sddmm.run: inner dimension mismatch";
  let k = a.Dense.cols in
  let count = Csr.nnz mask in
  let out = Array.make count 0. in
  let sr = semiring in
  let plus_times = Semiring.is_plus_times sr in
  Parallel.rows_weighted ?pool ~prefix:mask.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let abase = i * k in
        for p = mask.Csr.row_ptr.(i) to mask.Csr.row_ptr.(i + 1) - 1 do
          let j = mask.Csr.col_idx.(p) in
          let dotv =
            if plus_times then begin
              let acc = ref 0. in
              for q = 0 to k - 1 do
                acc := !acc +. (a.Dense.data.(abase + q) *. Dense.get b q j)
              done;
              !acc
            end
            else begin
              let acc = ref sr.Semiring.zero in
              for q = 0 to k - 1 do
                acc :=
                  sr.Semiring.add !acc
                    (sr.Semiring.mul a.Dense.data.(abase + q) (Dense.get b q j))
              done;
              !acc
            end
          in
          out.(p) <- (if plus_times then Csr.value mask p *. dotv
                      else sr.Semiring.mul (Csr.value mask p) dotv)
        done
      done);
  Csr.with_values mask out

let rank1 ?pool (mask : Csr.t) d_left d_right =
  if Array.length d_left <> mask.Csr.n_rows then
    invalid_arg "Sddmm.rank1: left vector dimension mismatch";
  if Array.length d_right <> mask.Csr.n_cols then
    invalid_arg "Sddmm.rank1: right vector dimension mismatch";
  let count = Csr.nnz mask in
  let out = Array.make count 0. in
  Parallel.rows_weighted ?pool ~prefix:mask.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let dl = d_left.(i) in
        for p = mask.Csr.row_ptr.(i) to mask.Csr.row_ptr.(i + 1) - 1 do
          out.(p) <- Csr.value mask p *. dl *. d_right.(mask.Csr.col_idx.(p))
        done
      done);
  Csr.with_values mask out

let dot_rows ?pool (mask : Csr.t) (x : Dense.t) (y : Dense.t) =
  if x.Dense.rows <> mask.Csr.n_rows then
    invalid_arg "Sddmm.dot_rows: X row count must match mask rows";
  if y.Dense.rows <> mask.Csr.n_cols then
    invalid_arg "Sddmm.dot_rows: Y row count must match mask cols";
  if x.Dense.cols <> y.Dense.cols then
    invalid_arg "Sddmm.dot_rows: feature dimension mismatch";
  let k = x.Dense.cols in
  let count = Csr.nnz mask in
  let out = Array.make count 0. in
  Parallel.rows_weighted ?pool ~prefix:mask.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let xbase = i * k in
        for p = mask.Csr.row_ptr.(i) to mask.Csr.row_ptr.(i + 1) - 1 do
          let ybase = mask.Csr.col_idx.(p) * k in
          let acc = ref 0. in
          for q = 0 to k - 1 do
            acc := !acc +. (x.Dense.data.(xbase + q) *. y.Dense.data.(ybase + q))
          done;
          out.(p) <- Csr.value mask p *. !acc
        done
      done);
  Csr.with_values mask out
