module Dense = Granii_tensor.Dense
module Vector = Granii_tensor.Vector
module Csr = Granii_sparse.Csr
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module Core = Granii_core
module Ex = Core.Executor
module P = Core.Primitive
module K = Granii_hw.Kernel_model

type grads = (string * Dense.t) list

let err fmt = Format.kasprintf (fun s -> raise (Ex.Execution_error s)) fmt

let dense = function Ex.Vdense d -> d | _ -> err "autodiff: expected dense value"
let sparse = function Ex.Vsparse s -> s | _ -> err "autodiff: expected sparse value"
let diag = function Ex.Vdiag d -> d | _ -> err "autodiff: expected diagonal value"

(* Gradient accumulator keyed by plan source. Dense grads for dense values,
   same-structure CSR grads for sparse values. *)
module Acc = struct
  type t = (Core.Plan.source, Ex.value) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let add (t : t) src g =
    match (Hashtbl.find_opt t src, g) with
    | None, _ -> Hashtbl.replace t src g
    | Some (Ex.Vdense old), Ex.Vdense g -> Hashtbl.replace t src (Ex.Vdense (Dense.add old g))
    | Some (Ex.Vsparse old), Ex.Vsparse g ->
        let sum =
          Array.init (Csr.nnz old) (fun p -> Csr.value old p +. Csr.value g p)
        in
        Hashtbl.replace t src (Ex.Vsparse (Csr.with_values old sum))
    | Some _, _ -> err "autodiff: gradient kind mismatch"

  let find (t : t) src = Hashtbl.find_opt t src
end

(* Sparse row/column sums of a weighted CSR, as vectors. *)
let sparse_row_sums s = Granii_sparse.Sparse_ops.row_sums s

let sparse_col_sums (s : Csr.t) =
  let acc = Vector.zeros s.Csr.n_cols in
  Csr.iter (fun _ j v -> acc.(j) <- acc.(j) +. v) s;
  acc

(* VJP of the row-wise softmax over stored values:
   ds = alpha .* (g - rowsum(alpha .* g)). *)
let edge_softmax_vjp (alpha : Csr.t) (g : Csr.t) =
  let out = Array.make (Csr.nnz alpha) 0. in
  for i = 0 to alpha.Csr.n_rows - 1 do
    let lo = alpha.Csr.row_ptr.(i) and hi = alpha.Csr.row_ptr.(i + 1) - 1 in
    let dot = ref 0. in
    for p = lo to hi do
      dot := !dot +. (Csr.value alpha p *. Csr.value g p)
    done;
    for p = lo to hi do
      out.(p) <- Csr.value alpha p *. (Csr.value g p -. !dot)
    done
  done;
  Csr.with_values alpha out

let outer_product (col : Vector.t) (row : Dense.t) =
  (* col is n, row is k x 1; result n x k = col . row^T *)
  let k, _ = Dense.dims row in
  Dense.init (Array.length col) k (fun i j -> col.(i) *. Dense.get row j 0)

let matvec_t (m : Dense.t) (v : Vector.t) =
  (* m^T . v as a (k x 1) dense *)
  let n, k = Dense.dims m in
  Dense.init k 1 (fun j _ ->
      let acc = ref 0. in
      for i = 0 to n - 1 do
        acc := !acc +. (Dense.get m i j *. v.(i))
      done;
      !acc)

let backward ~(plan : Core.Plan.t) ~graph ~bindings ~(forward : Ex.report) ~seed =
  ignore graph;
  let value_of = function
    | Core.Plan.Computed i -> (
        match List.assoc_opt i forward.Ex.intermediates with
        | Some v -> v
        | None -> err "autodiff: missing forward value for step t%d" i)
    | Core.Plan.Input "__graph__" -> err "autodiff: graph token has no value"
    | Core.Plan.Input name -> (
        match List.assoc_opt name bindings with
        | Some v -> v
        | None -> err "autodiff: unbound input %s" name)
  in
  let phase_of_step =
    let tbl = Hashtbl.create 16 in
    List.iter (fun (s : Core.Plan.step) -> Hashtbl.replace tbl s.Core.Plan.idx s.Core.Plan.phase) plan.Core.Plan.steps;
    fun i -> Hashtbl.find_opt tbl i
  in
  (* A source needs a gradient if it is a per-iteration computed step (its
     producer will consume it) or a bound dense input. *)
  let wants_grad = function
    | Core.Plan.Computed i -> phase_of_step i = Some Core.Plan.Per_iteration
    | Core.Plan.Input "__graph__" -> false
    | Core.Plan.Input _ -> true
  in
  let acc = Acc.create () in
  Acc.add acc plan.Core.Plan.output (Ex.Vdense seed);
  let steps_rev = List.rev plan.Core.Plan.steps in
  List.iter
    (fun (s : Core.Plan.step) ->
      if s.Core.Plan.phase = Core.Plan.Per_iteration then
        match Acc.find acc (Core.Plan.Computed s.Core.Plan.idx) with
        | None -> ()
        | Some g -> (
            let args = s.Core.Plan.args in
            let push src v = if wants_grad src then Acc.add acc src v in
            match (s.Core.Plan.prim, args) with
            | P.Gemm _, [ sa; sb ] ->
                let a = dense (value_of sa) and b = dense (value_of sb) in
                let gd = dense g in
                push sa (Ex.Vdense (Dense.matmul gd (Dense.transpose b)));
                push sb (Ex.Vdense (Dense.matmul (Dense.transpose a) gd))
            | P.Spmm _, [ ss; sb ] ->
                let sp = sparse (value_of ss) in
                let gd = dense g in
                push sb (Ex.Vdense (Spmm.run (Csr.transpose sp) gd));
                if wants_grad ss then
                  (* dS_ij = <dC_i, B_j>: an SDDMM over S's structure. *)
                  push ss (Ex.Vsparse (Sddmm.dot_rows (Csr.drop_values sp) gd (dense (value_of sb))))
            | P.Dense_sparse_mm _, [ sb; ss ] ->
                let sp = sparse (value_of ss) in
                push sb (Ex.Vdense (Spmm.run_transposed (dense g) (Csr.transpose sp)))
            | P.Row_broadcast _, [ sd; sx ] ->
                push sx (Ex.Vdense (Dense.row_broadcast (diag (value_of sd)) (dense g)))
            | P.Col_broadcast _, [ sx; sd ] ->
                push sx (Ex.Vdense (Dense.col_broadcast (dense g) (diag (value_of sd))))
            | P.Dense_add _, parts -> List.iter (fun src -> push src g) parts
            | P.Dense_map { kind; _ }, [ sx ] ->
                let x = dense (value_of sx) and gd = dense g in
                let gx =
                  match kind with
                  | Core.Matrix_ir.Relu ->
                      Dense.map2 (fun xv gv -> if xv > 0. then gv else 0.) x gd
                  | Core.Matrix_ir.Leaky_relu ->
                      Dense.map2 (fun xv gv -> if xv > 0. then gv else 0.2 *. gv) x gd
                  | Core.Matrix_ir.Sigmoid ->
                      Dense.map2
                        (fun xv gv ->
                          let sg = 1. /. (1. +. exp (-.xv)) in
                          gv *. sg *. (1. -. sg))
                        x gd
                  | Core.Matrix_ir.Log_softmax ->
                      let sm = Dense.softmax_rows x in
                      let rows, cols = Dense.dims x in
                      Dense.init rows cols (fun i j ->
                          let gsum = ref 0. in
                          for c = 0 to cols - 1 do
                            gsum := !gsum +. Dense.get gd i c
                          done;
                          Dense.get gd i j -. (Dense.get sm i j *. !gsum))
                  | Core.Matrix_ir.Edge_softmax -> err "autodiff: edge_softmax on dense"
                in
                push sx (Ex.Vdense gx)
            | P.Edge_softmax, [ ssc ] ->
                let alpha = sparse (value_of (Core.Plan.Computed s.Core.Plan.idx)) in
                push ssc (Ex.Vsparse (edge_softmax_vjp alpha (sparse g)))
            | P.Edge_score _, [ _mask; sfeats; sasrc; sadst ] ->
                let theta = dense (value_of sfeats) in
                let a_src = dense (value_of sasrc) and a_dst = dense (value_of sadst) in
                let scores = sparse (value_of (Core.Plan.Computed s.Core.Plan.idx)) in
                let gsc = sparse g in
                (* chain through leaky_relu: sign of output = sign of input *)
                let dscore =
                  Csr.with_values scores
                    (Array.init (Csr.nnz scores) (fun p ->
                         let slope = if Csr.value scores p >= 0. then 1. else 0.2 in
                         slope *. Csr.value gsc p))
                in
                let ds = sparse_row_sums dscore and dt = sparse_col_sums dscore in
                push sfeats
                  (Ex.Vdense (Dense.add (outer_product ds a_src) (outer_product dt a_dst)));
                push sasrc (Ex.Vdense (matvec_t theta ds));
                push sadst (Ex.Vdense (matvec_t theta dt))
            | (P.Sddmm_rank1 | P.Diag_scale _ | P.Diag_combine | P.Sparse_add _
              | P.Degree _), _ ->
                (* Graph-derived computations carry no data gradient. *)
                ()
            | prim, args ->
                err "autodiff: no VJP for %a/%d" P.pp prim (List.length args)))
    steps_rev;
  List.filter_map
    (fun (name, v) ->
      match (v, Acc.find acc (Core.Plan.Input name)) with
      | Ex.Vdense _, Some (Ex.Vdense g) -> Some (name, g)
      | _, _ -> None)
    bindings

let backward_kernels ~graph ~env (plan : Core.Plan.t) =
  let n = Granii_graph.Graph.n_nodes graph in
  let nnz = Granii_graph.Graph.n_edges graph + n in
  let i = Core.Dim.instantiate env in
  (* Whether a source carries a data gradient: only outputs of per-iteration
     steps do — setup-phase intermediates (precomputed normalized adjacency,
     degree vectors) are graph-derived constants. *)
  let phase_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (s : Core.Plan.step) -> Hashtbl.replace tbl s.Core.Plan.idx s.Core.Plan.phase)
      plan.Core.Plan.steps;
    fun idx -> Hashtbl.find_opt tbl idx
  in
  List.concat_map
    (fun (s : Core.Plan.step) ->
      if s.Core.Plan.phase = Core.Plan.Setup then []
      else
        match s.Core.Plan.prim with
        | P.Gemm { m; k; n = cols } ->
            [ K.Gemm { m = i m; k = i cols; n = i k }; K.Gemm { m = i k; k = i m; n = i cols } ]
        | P.Spmm { k; weighted } ->
            let base = [ K.Spmm { rows = n; nnz; k = i k; weighted } ] in
            (* an attention-valued sparse operand also needs dS = SDDMM;
               sparse operands precomputed at setup do not *)
            let needs_sparse_grad =
              match s.Core.Plan.args with
              | Core.Plan.Computed idx :: _ when weighted ->
                  phase_of idx = Some Core.Plan.Per_iteration
              | _ -> false
            in
            if needs_sparse_grad then K.Sddmm { nnz; k = i k } :: base else base
        | P.Dense_sparse_mm { m } ->
            [ K.Dense_sparse_mm { rows = i m; nnz; cols = n; k = n } ]
        | P.Row_broadcast { k } -> [ K.Row_broadcast { n; k = i k } ]
        | P.Col_broadcast { k } -> [ K.Col_broadcast { n; k = i k } ]
        | P.Dense_add { m; k } -> [ K.Elementwise { n = i m; k = i k; flops_per_elt = 1. } ]
        | P.Dense_map { m; k; _ } ->
            [ K.Elementwise { n = i m; k = i k; flops_per_elt = 2. } ]
        | P.Edge_score { k } ->
            [ K.Gemm { m = n; k = i k; n = 1 };
              K.Gemm { m = n; k = i k; n = 1 };
              K.Sddmm { nnz; k = 1 };
              K.Edge_softmax { nnz } ]
        | P.Edge_softmax -> [ K.Edge_softmax { nnz }; K.Edge_softmax { nnz } ]
        | P.Sddmm_rank1 | P.Diag_scale _ | P.Diag_combine | P.Sparse_add _
        | P.Degree _ ->
            [])
    plan.Core.Plan.steps

let backward_time ~profile ~graph ~env ?(seed = 0) plan =
  List.fold_left
    (fun acc k -> acc +. K.time_noisy profile ~seed k)
    0.
    (backward_kernels ~graph ~env plan)
