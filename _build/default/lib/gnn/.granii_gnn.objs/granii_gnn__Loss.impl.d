lib/gnn/loss.ml: Array Fun Granii_tensor
