lib/gnn/trainer.ml: Array Autodiff Granii_core Granii_hw Granii_tensor Layer Loss Optimizer
