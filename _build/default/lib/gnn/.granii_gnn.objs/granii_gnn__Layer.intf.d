lib/gnn/layer.mli: Granii_core Granii_graph Granii_mp Granii_tensor
