lib/gnn/loss.mli: Granii_tensor
