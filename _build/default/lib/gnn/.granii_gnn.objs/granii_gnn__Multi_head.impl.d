lib/gnn/multi_head.ml: Granii_core Granii_graph Granii_tensor Layer List
