lib/gnn/layer.ml: Granii_core Granii_graph Granii_mp Granii_tensor List
