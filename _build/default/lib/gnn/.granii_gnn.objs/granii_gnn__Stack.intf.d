lib/gnn/stack.mli: Granii_core Granii_graph Granii_mp Granii_tensor Layer Optimizer
