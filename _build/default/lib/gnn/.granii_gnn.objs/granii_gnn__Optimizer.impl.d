lib/gnn/optimizer.ml: Granii_tensor Hashtbl List
