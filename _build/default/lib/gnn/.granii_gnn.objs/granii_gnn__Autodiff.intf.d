lib/gnn/autodiff.mli: Granii_core Granii_graph Granii_hw Granii_tensor
