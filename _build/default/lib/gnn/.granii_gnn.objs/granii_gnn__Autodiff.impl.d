lib/gnn/autodiff.ml: Array Format Granii_core Granii_graph Granii_hw Granii_sparse Granii_tensor Hashtbl List
