lib/gnn/optimizer.mli: Autodiff Layer
