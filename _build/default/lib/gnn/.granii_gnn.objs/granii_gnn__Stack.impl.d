lib/gnn/stack.ml: Array Autodiff Granii_core Granii_graph Granii_mp Granii_tensor Layer List Loss Optimizer Printf String
