lib/gnn/multi_head.mli: Granii_core Granii_graph Granii_hw Granii_mp Granii_tensor Layer
