(** First-order optimizers over named parameter sets. *)

type t

val sgd : ?momentum:float -> lr:float -> unit -> t
(** Stochastic gradient descent with optional classical momentum. *)

val adam : ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t
(** Adam with bias correction (defaults 0.9 / 0.999 / 1e-8). *)

val step : t -> Layer.params -> Autodiff.grads -> Layer.params
(** One update. Parameters without a gradient pass through unchanged;
    optimizer state is keyed by parameter name and kept inside [t]. *)

val name : t -> string
