module Dense = Granii_tensor.Dense

type state = (string, Dense.t * Dense.t) Hashtbl.t
(* (first moment / velocity, second moment) per parameter *)

type kind =
  | Sgd of { lr : float; momentum : float }
  | Adam of { lr : float; beta1 : float; beta2 : float; eps : float }

type t = { kind : kind; state : state; mutable step_count : int }

let sgd ?(momentum = 0.) ~lr () =
  { kind = Sgd { lr; momentum }; state = Hashtbl.create 8; step_count = 0 }

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
  { kind = Adam { lr; beta1; beta2; eps }; state = Hashtbl.create 8; step_count = 0 }

let zeros_like w =
  let r, c = Dense.dims w in
  Dense.zeros r c

let step t params grads =
  t.step_count <- t.step_count + 1;
  List.map
    (fun (pname, w) ->
      match List.assoc_opt pname grads with
      | None -> (pname, w)
      | Some g -> (
          match t.kind with
          | Sgd { lr; momentum } ->
              if momentum = 0. then (pname, Dense.sub w (Dense.scale lr g))
              else begin
                let v, aux =
                  match Hashtbl.find_opt t.state pname with
                  | Some s -> s
                  | None -> (zeros_like w, zeros_like w)
                in
                let v' = Dense.add (Dense.scale momentum v) g in
                Hashtbl.replace t.state pname (v', aux);
                (pname, Dense.sub w (Dense.scale lr v'))
              end
          | Adam { lr; beta1; beta2; eps } ->
              let m, v =
                match Hashtbl.find_opt t.state pname with
                | Some s -> s
                | None -> (zeros_like w, zeros_like w)
              in
              let m' = Dense.add (Dense.scale beta1 m) (Dense.scale (1. -. beta1) g) in
              let v' =
                Dense.add (Dense.scale beta2 v)
                  (Dense.scale (1. -. beta2) (Dense.mul_elementwise g g))
              in
              Hashtbl.replace t.state pname (m', v');
              let tc = float_of_int t.step_count in
              let m_hat = Dense.scale (1. /. (1. -. (beta1 ** tc))) m' in
              let v_hat = Dense.scale (1. /. (1. -. (beta2 ** tc))) v' in
              let update =
                Dense.map2 (fun mh vh -> lr *. mh /. (sqrt vh +. eps)) m_hat v_hat
              in
              (pname, Dense.sub w update)))
    params

let name t =
  match t.kind with Sgd _ -> "sgd" | Adam _ -> "adam"
