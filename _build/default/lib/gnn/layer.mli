(** GNN layer state: parameter initialization and input binding. *)

type params = (string * Granii_tensor.Dense.t) list
(** Learnable parameters by leaf name. *)

val init_params :
  ?seed:int -> env:Granii_core.Dim.env -> Granii_mp.Lower.lowered -> params
(** Glorot-initialized weights for every parameter leaf of the lowered
    model, shaped by the runtime sizes. *)

val bindings :
  ?epsilon:float -> graph:Granii_graph.Graph.t -> h:Granii_tensor.Dense.t ->
  params -> (string * Granii_core.Executor.value) list
(** The executor binding environment: ["H"], ["A"] ({m \tilde A} with
    self-loops), GIN's ["EpsI"] constant diagonal (value {m 1 + \epsilon},
    default [epsilon = 0.1]), and every parameter. Normalization leaves
    (["D"], ["Dinv"]) are NOT bound — plans compute them with [Degree]
    steps. *)
