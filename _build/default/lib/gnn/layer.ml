module Dense = Granii_tensor.Dense
module Dim = Granii_core.Dim

type params = (string * Dense.t) list

let init_params ?(seed = 0) ~env (low : Granii_mp.Lower.lowered) =
  List.mapi
    (fun i (leaf : Granii_core.Matrix_ir.leaf) ->
      let rows = Dim.instantiate env leaf.Granii_core.Matrix_ir.rows in
      let cols = Dim.instantiate env leaf.Granii_core.Matrix_ir.cols in
      (leaf.Granii_core.Matrix_ir.name, Dense.glorot ~seed:(seed + i) rows cols))
    low.Granii_mp.Lower.param_leaves

let bindings ?(epsilon = 0.1) ~graph ~h params =
  let n = Granii_graph.Graph.n_nodes graph in
  let a_tilde = Granii_graph.Graph.with_self_loops graph in
  [ ("H", Granii_core.Executor.Vdense h);
    ("A", Granii_core.Executor.Vsparse a_tilde);
    ("EpsI", Granii_core.Executor.Vdiag (Granii_tensor.Vector.create n (1. +. epsilon)))
  ]
  @ List.map (fun (name, w) -> (name, Granii_core.Executor.Vdense w)) params
