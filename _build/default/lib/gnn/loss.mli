(** Node-classification loss: softmax cross-entropy with an optional
    training mask. *)

val softmax_cross_entropy :
  ?mask:bool array -> logits:Granii_tensor.Dense.t -> labels:int array ->
  unit -> float * Granii_tensor.Dense.t
(** [(loss, dlogits)]: mean cross-entropy over the masked nodes and its
    gradient w.r.t. the logits (zero rows for unmasked nodes). Raises
    [Invalid_argument] on length mismatches, out-of-range labels, or an
    all-false mask. *)

val accuracy :
  ?mask:bool array -> logits:Granii_tensor.Dense.t -> labels:int array ->
  unit -> float
(** Fraction of masked nodes whose argmax prediction matches the label. *)
