module Dense = Granii_tensor.Dense

let check_inputs name logits labels mask =
  let n, c = Dense.dims logits in
  if Array.length labels <> n then invalid_arg (name ^ ": labels length mismatch");
  Array.iter
    (fun l -> if l < 0 || l >= c then invalid_arg (name ^ ": label out of range"))
    labels;
  match mask with
  | Some m when Array.length m <> n -> invalid_arg (name ^ ": mask length mismatch")
  | Some m when not (Array.exists Fun.id m) -> invalid_arg (name ^ ": empty mask")
  | Some _ | None -> ()

let softmax_cross_entropy ?mask ~logits ~labels () =
  check_inputs "Loss.softmax_cross_entropy" logits labels mask;
  let n, c = Dense.dims logits in
  let in_mask i = match mask with None -> true | Some m -> m.(i) in
  let count =
    match mask with
    | None -> n
    | Some m -> Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m
  in
  let scale = 1. /. float_of_int count in
  let log_probs = Dense.log_softmax_rows logits in
  let loss = ref 0. in
  let grad = Dense.zeros n c in
  for i = 0 to n - 1 do
    if in_mask i then begin
      loss := !loss -. Dense.get log_probs i labels.(i);
      for j = 0 to c - 1 do
        let p = exp (Dense.get log_probs i j) in
        let indicator = if j = labels.(i) then 1. else 0. in
        Dense.set grad i j (scale *. (p -. indicator))
      done
    end
  done;
  (!loss *. scale, grad)

let accuracy ?mask ~logits ~labels () =
  check_inputs "Loss.accuracy" logits labels mask;
  let n, _ = Dense.dims logits in
  let in_mask i = match mask with None -> true | Some m -> m.(i) in
  let preds = Dense.argmax_rows logits in
  let hit = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    if in_mask i then begin
      incr total;
      if preds.(i) = labels.(i) then incr hit
    end
  done;
  if !total = 0 then 0. else float_of_int !hit /. float_of_int !total
