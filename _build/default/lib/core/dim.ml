type t = N | Kin | Kout | One | Const of int

type scenario = Shrinking | Growing

let all_scenarios = [ Shrinking; Growing ]

let eval scenario = function
  | N -> 65536.
  | Kin -> ( match scenario with Shrinking -> 512. | Growing -> 128.)
  | Kout -> ( match scenario with Shrinking -> 128. | Growing -> 512.)
  | One -> 1.
  | Const c -> float_of_int c

type env = { n : int; nnz : int; k_in : int; k_out : int }

let instantiate env = function
  | N -> env.n
  | Kin -> env.k_in
  | Kout -> env.k_out
  | One -> 1
  | Const c -> c

let equal a b =
  match (a, b) with
  | N, N | Kin, Kin | Kout, Kout | One, One -> true
  | Const a, Const b -> a = b
  | (N | Kin | Kout | One | Const _), _ -> false

let pp ppf = function
  | N -> Format.fprintf ppf "N"
  | Kin -> Format.fprintf ppf "Kin"
  | Kout -> Format.fprintf ppf "Kout"
  | One -> Format.fprintf ppf "1"
  | Const c -> Format.fprintf ppf "%d" c

let pp_scenario ppf = function
  | Shrinking -> Format.fprintf ppf "Kin>=Kout"
  | Growing -> Format.fprintf ppf "Kin<Kout"
