type ccand = {
  tree : Assoc_tree.t;
  scenarios : Dim.scenario list;
  plan : Plan.t;
}

type t = {
  model_name : string;
  candidates : ccand list;
}

let compile ?hoist ?degree_leaves ~name (pruned : Prune.result) =
  let candidates =
    List.mapi
      (fun i (c : Prune.candidate) ->
        { tree = c.Prune.tree;
          scenarios = c.Prune.scenarios;
          plan =
            Plan.of_tree ?hoist ?degree_leaves
              ~name:(Printf.sprintf "%s_a%d" name i)
              c.Prune.tree })
      pruned.Prune.promoted
  in
  { model_name = name; candidates }

let for_scenario t scenario =
  List.filter (fun c -> List.mem scenario c.scenarios) t.candidates

let needs_cost_models t scenario = List.length (for_scenario t scenario) > 1

let pp ppf t =
  Format.fprintf ppf "@[<v>def %s(graph, feats, k_in, k_out):@," t.model_name;
  List.iter
    (fun scenario ->
      let guard =
        match scenario with
        | Dim.Shrinking -> "k_in >= k_out"
        | Dim.Growing -> "k_in < k_out"
      in
      Format.fprintf ppf "  if %s:@," guard;
      match for_scenario t scenario with
      | [] -> Format.fprintf ppf "    pass  # no candidate@,"
      | [ only ] ->
          Format.fprintf ppf "    return run(%s)  # decided by embedding sizes alone@,"
            only.plan.Plan.name
      | several ->
          Format.fprintf ppf "    costs = {@,";
          List.iter
            (fun c ->
              Format.fprintf ppf "      %s: %s,@," c.plan.Plan.name
                (String.concat " + "
                   (List.map
                      (fun p -> Format.asprintf "cost[%s]" (Primitive.name p))
                      (Plan.primitives c.plan))))
            several;
          Format.fprintf ppf "    }@,    return run(argmin(costs))@,")
    Dim.all_scenarios;
  Format.fprintf ppf "@]"
