(** The sparse / dense matrix primitive vocabulary.

    Edges of an association tree are annotated with these primitives
    (paper, Sec. IV-C); the enumeration rules decide which primitive realizes
    each reduction of the matrix IR. Primitives carry {e symbolic} shapes
    ({!Dim.t}) so the offline pruning stage can compare candidates without
    the input, and are {!instantiate}d against runtime sizes to obtain
    {!Granii_hw.Kernel_model.kernel}s for cost prediction, simulation, and
    profiling. *)

type t =
  | Gemm of { m : Dim.t; k : Dim.t; n : Dim.t }
      (** dense update: {m (m \times k) \cdot (k \times n)} *)
  | Spmm of { k : Dim.t; weighted : bool }
      (** aggregation: sparse {m (N \times N)} times dense {m (N \times k)} *)
  | Dense_sparse_mm of { m : Dim.t }
      (** dense {m (m \times N)} times sparse {m (N \times N)} *)
  | Sddmm_rank1
      (** {m \mathrm{diag}(d_L) \cdot A \cdot \mathrm{diag}(d_R)} fused over
          stored entries — GCN's normalization precompute (Eq. 3) *)
  | Diag_scale of { side : [ `Left | `Right ] }
      (** diagonal times sparse (or sparse times diagonal) *)
  | Row_broadcast of { k : Dim.t }  (** Eq. 1 over an {m N \times k} dense *)
  | Col_broadcast of { k : Dim.t }
  | Diag_combine  (** product of two diagonals *)
  | Sparse_add of { diag : bool }
      (** sparse-plus-sparse; [diag = true] when one side is diagonal
          (GIN's {m (1{+}\epsilon) I + A} precompute) *)
  | Dense_add of { m : Dim.t; k : Dim.t }
  | Edge_score of { k : Dim.t }
      (** GAT attention scores over stored edges from {m N \times k}
          features *)
  | Edge_softmax
  | Dense_map of { kind : Matrix_ir.nonlinear; m : Dim.t; k : Dim.t }
  | Degree of { binned : bool; power : degree_power }
      (** normalization-vector computation; [binned = true] models
          WiseGraph's atomic scatter-add binning (Sec. VI-C1), [false] the
          cheap CSR row-pointer diff. [power] selects the normalization:
          {m \tilde D^{-1/2}} (GCN) or {m \tilde D^{-1}} (mean
          aggregation). *)

and degree_power = Inv_sqrt | Inv

val name : t -> string
(** Stable short name, also the cost-model identity: two primitives with the
    same [name] share a learned cost model. *)

val is_sparse_primitive : t -> bool
(** Whether the paper's taxonomy classifies it as a sparse primitive (at
    least one sparse operand) — used by the Fig. 2 runtime breakdown. *)

val symbolic_flops : Dim.scenario -> nnz_per_node:float -> t -> float
(** FLOP estimate under a pruning scenario with a representative average
    degree; drives the input-oblivious "larger matrices" dominance rule. *)

val to_kernels : Dim.env -> t -> Granii_hw.Kernel_model.kernel list
(** Concrete kernels executed by this primitive for the given runtime sizes
    (most primitives map to one kernel; [Edge_score] maps to three). *)

val instantiated_dims : Dim.env -> t -> float * float * float
(** The [(m, k, n)]-style size triple fed to learned cost models (meaning is
    per-kind, e.g. [(rows, nnz, k)] for sparse primitives). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
