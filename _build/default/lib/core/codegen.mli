(** Code generation for promoted candidates (paper, Sec. IV-D).

    The offline stage's output: each promoted association tree is lowered to
    an executable {!Plan.t}, and the whole set is wrapped in the runtime
    dispatch structure of Fig. 7 — candidates that can only win under one
    embedding-size scenario are guarded by a plain size comparison, and the
    remainder are discriminated by the cost models at runtime. *)

type ccand = {
  tree : Assoc_tree.t;
  scenarios : Dim.scenario list;
  plan : Plan.t;
}

type t = {
  model_name : string;
  candidates : ccand list;  (** promoted candidates, in enumeration order *)
}

val compile :
  ?hoist:bool -> ?degree_leaves:(string * Plan.degree_spec) list ->
  name:string -> Prune.result -> t
(** Lowers every promoted candidate. [hoist] and [degree_leaves] are passed
    to {!Plan.of_tree}; GRANII-generated code hoists by default. *)

val for_scenario : t -> Dim.scenario -> ccand list
(** Candidates whose annotation allows the scenario. *)

val needs_cost_models : t -> Dim.scenario -> bool
(** [false] when the scenario condition alone already narrows the dispatch
    to a single candidate (the cheap Fig. 7 fast path). *)

val pp : Format.formatter -> t -> unit
(** Fig. 7-style pseudocode of the generated conditional dispatch. *)
