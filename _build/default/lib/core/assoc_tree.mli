(** Association trees (paper, Sec. IV-C).

    One association tree is one legal re-association of the matrix IR: leaves
    are the IR's matrices, internal nodes are intermediate results, and every
    internal node is produced by a concrete sparse or dense
    {!Primitive.t}. Nodes carry a canonical structural key, so identical
    sub-computations inside one tree (or across the trees of a forest) share
    a key — which is how GRANII "scans all trees to exploit any opportunities
    to reuse computed values" (common-subexpression elimination). *)

type node = Leaf of Matrix_ir.leaf | Op of op

and op = {
  prim : Primitive.t;
  args : node list;
  rows : Dim.t;
  cols : Dim.t;
  attr : Matrix_ir.attr;
  okey : string;  (** canonical key of the computation rooted here *)
}

type t = { root : node }

val mk_op :
  prim:Primitive.t -> args:node list -> rows:Dim.t -> cols:Dim.t ->
  attr:Matrix_ir.attr -> node
(** Builds an internal node, computing its key. *)

val node_key : node -> string

val node_shape : node -> Dim.t * Dim.t

val node_attr : node -> Matrix_ir.attr

val of_root : node -> t

val ops : t -> op list
(** Unique operations in topological (arguments-first) order — the CSE'd
    step list: an op whose key appears twice in the tree is returned once. *)

val primitives : t -> Primitive.t list
(** Primitives of {!ops}, in order. *)

val tree_key : t -> string
(** Canonical key of the whole candidate (for forest-level deduplication). *)

val leaves : t -> Matrix_ir.leaf list
(** Unique leaves by name. *)

val is_graph_only : node -> bool
(** [true] when every leaf under the node is graph-derived (sparse adjacency
    or diagonal): such nodes are loop-invariant and can be hoisted into the
    one-time setup phase. *)

val pp : Format.formatter -> t -> unit
