(** Input-oblivious candidate pruning (paper, Sec. IV-C "Pruning
    Associations").

    Two dominance rules are evaluated under each embedding-size scenario
    ({m K_{in} \ge K_{out}} and {m K_{in} < K_{out}}), with no knowledge of
    the input graph:

    + a candidate whose primitive multiset is a {e proper sub-multiset} of
      another's (at equal sizes) dominates it — this also collapses exact
      duplicates;
    + a candidate with the {e same} primitive multiset but smaller matrices
      everywhere (and strictly smaller somewhere) dominates.

    A candidate dominated under {e both} scenarios is pruned; survivors are
    annotated with the scenario(s) in which they remain undominated, which
    {!Codegen} later turns into embedding-size runtime conditions. *)

type candidate = {
  tree : Assoc_tree.t;
  scenarios : Dim.scenario list;
      (** non-empty: scenarios where this candidate may win *)
}

type result = {
  promoted : candidate list;
  n_enumerated : int;
  n_pruned : int;
}

val run : ?nnz_per_node:float -> Assoc_tree.t list -> result
(** Prunes a forest. [nnz_per_node] (default [16.]) is the representative
    average degree used when sizing sparse primitives symbolically; the
    dominance relations are insensitive to its exact value because both rules
    compare like against like. The promoted list is never empty for a
    non-empty input and preserves enumeration order. *)

val signature : Dim.scenario -> nnz_per_node:float -> Assoc_tree.t ->
  (string * float) list
(** Sorted (primitive-name, symbolic-FLOPs) multiset of a tree under a
    scenario — the object the dominance rules compare. Exposed for tests. *)

val filter_nodes :
  ?nnz_per_node:float -> Assoc_tree.node list -> Assoc_tree.node list
(** The same both-scenario dominance filter applied to a list of alternative
    sub-computations. Used by the enumerator to keep multiplicative
    sub-problem explosions (long chains inside additions, as in TAGCN) in
    check: a dominated sub-candidate can only yield dominated full
    candidates. *)
