(** Plan execution, with real or simulated timing.

    Every step is {e always} executed for real (so numerical results can be
    cross-checked between candidates); what differs is the clock:

    - [Measure]: host wall-clock per step — the "real CPU" mode;
    - [Simulate profile]: each step is charged the analytic
      {!Granii_hw.Kernel_model} time for its instantiated kernels on the
      given hardware profile, with deterministic jitter (at the pool's
      thread count when a [?pool] is given). This is the substitute for the
      paper's A100/H100 testbeds (see DESIGN.md).

    [estimate] skips execution entirely and just sums predicted kernel times
    — used by the large parameter sweeps of the benches. *)

type value =
  | Vdense of Granii_tensor.Dense.t
  | Vsparse of Granii_sparse.Csr.t
  | Vdiag of Granii_tensor.Vector.t

type timing = Measure | Simulate of Granii_hw.Hw_profile.t

type report = {
  output : value;
  setup_time : float;
  iteration_time : float;
  per_step : (Primitive.t * Plan.phase * float) list;
  intermediates : (int * value) list;
      (** every step's output, by step index — consumed by the reverse pass
          of {!Granii_gnn.Autodiff} *)
}

exception Execution_error of string

val apply :
  ?pool:Granii_tensor.Parallel.t ->
  Primitive.t -> Granii_graph.Graph.t -> value list -> value
(** Execute one primitive against concrete operand values — the kernel
    dispatch used by {!run}, exposed so measured profiling
    ({!Profiling.collect_measured}) can time individual primitives. Raises
    {!Execution_error} on an argument-kind mismatch. With [?pool], kernels
    run on the multicore engine ({!Granii_hw.Domain_pool}). *)

val run :
  ?seed:int -> ?pool:Granii_tensor.Parallel.t -> timing:timing ->
  graph:Granii_graph.Graph.t ->
  bindings:(string * value) list -> Plan.t -> report
(** Executes the plan once. Leaf names are resolved in [bindings]; the
    graph's {m \tilde A} and normalization vector are available to [Degree]
    steps. Raises {!Execution_error} on an unbound input or an
    argument-kind mismatch (which would indicate an enumeration bug). *)

val estimate :
  ?seed:int -> profile:Granii_hw.Hw_profile.t -> env:Dim.env -> Plan.t ->
  float * float
(** [(setup_time, iteration_time)] predicted analytically from symbolic
    primitive shapes — no execution, no bindings. *)

val total_time : setup:float -> iteration:float -> iterations:int -> float
(** [setup + iterations * iteration]: the quantity compositions compete on
    (the paper evaluates at 100 iterations). *)

val shape_of : value -> int * int

val pp_value : Format.formatter -> value -> unit
