(** GRANII's matrix intermediate representation (paper, Sec. IV-B).

    A tree whose leaves are matrices carrying attributes (Table I) and whose
    internal nodes are matrix operations. Unlike a plain computation graph,
    {e associative multiplication chains are kept flat at a single level}
    ([Mult] of a list), which is what lets the enumeration stage walk all
    re-associations. Non-linear functions are barriers: re-association never
    crosses them (Sec. IV-B, "Code Translation"). *)

type dense_sub =
  | Data    (** activations / node features *)
  | Weight  (** learnable parameters *)

type sparse_sub =
  | Weighted    (** stored non-zero values are meaningful *)
  | Unweighted  (** only the non-zero positions matter *)
  | Diagonal    (** a diagonal matrix, stored as a vector at runtime *)

type attr = Dense of dense_sub | Sparse of sparse_sub

type nonlinear = Relu | Leaky_relu | Sigmoid | Edge_softmax | Log_softmax

type leaf = { name : string; rows : Dim.t; cols : Dim.t; attr : attr }

type expr =
  | Leaf of leaf
  | Mult of expr list
      (** flat associative multiplication chain; length at least 2 *)
  | Add of expr list
      (** elementwise sum of same-shaped operands; length at least 2 *)
  | Row_broadcast of expr * expr
      (** [(d, x)]: scale row [i] of dense [x] by the [i]-th diagonal entry
          of [d] (Eq. 1). Present before the rewrite pass; {!Rewrite}
          replaces it by a [Mult] with the diagonal. *)
  | Col_broadcast of expr * expr
      (** [(x, d)]: scale column [j] of [x] by [d]'s [j]-th entry *)
  | Nonlinear of nonlinear * expr  (** a re-association barrier *)
  | Edge_score of { mask : expr; feats : expr; attn_src : leaf; attn_dst : leaf }
      (** GAT attention scores: for every stored edge {m (i, j)} of [mask],
          {m a_{src}^\top \theta_i + a_{dst}^\top \theta_j} where
          {m \theta = } [feats]. Produces a weighted sparse matrix with
          [mask]'s structure. [feats] is an arbitrary sub-expression — the
          updated embeddings {m H W} — which is what the reuse-based GAT
          composition shares with aggregation (Sec. III-B). *)

(** {1 Leaf constructors} *)

val adjacency : ?weighted:bool -> string -> leaf
(** [N]x[N] sparse adjacency (unweighted by default). *)

val diagonal : string -> leaf
(** [N]x[N] diagonal, e.g. {m \tilde D^{-1/2}}. *)

val features : string -> leaf
(** [N]x[Kin] dense data (node embeddings). *)

val weight : ?rows:Dim.t -> ?cols:Dim.t -> string -> leaf
(** Dense learnable weight, [Kin]x[Kout] by default. *)

val dense_leaf : string -> Dim.t -> Dim.t -> leaf
(** Dense data leaf with explicit shape. *)

(** {1 Shape and attribute inference} *)

exception Ill_formed of string

val infer : expr -> (Dim.t * Dim.t) * attr
(** Shape and attribute of an expression. Raises {!Ill_formed} on
    inner-dimension mismatches, mis-shaped [Add] operands, non-diagonal
    broadcast operands, or chains shorter than two elements. *)

val shape : expr -> Dim.t * Dim.t

val attr_of : expr -> attr

val is_diagonal : expr -> bool

val is_sparse : expr -> bool

val is_dense : expr -> bool

(** {1 Structure} *)

val leaves : expr -> leaf list
(** All leaves, left to right, duplicates preserved. *)

val key : expr -> string
(** Canonical structural key; equal keys = identical computations. Used for
    common-subexpression detection. *)

val equal : expr -> expr -> bool

val pp_attr : Format.formatter -> attr -> unit

val pp_nonlinear : Format.formatter -> nonlinear -> unit

val pp : Format.formatter -> expr -> unit
