open Matrix_ir

let rec flatten expr =
  match expr with
  | Leaf _ -> expr
  | Mult es -> (
      let es = List.map flatten es in
      let merged =
        List.concat_map (function Mult inner -> inner | e -> [ e ]) es
      in
      match merged with [ single ] -> single | _ -> Mult merged)
  | Add es -> (
      let es = List.map flatten es in
      let merged = List.concat_map (function Add inner -> inner | e -> [ e ]) es in
      match merged with [ single ] -> single | _ -> Add merged)
  | Row_broadcast (d, x) -> Row_broadcast (flatten d, flatten x)
  | Col_broadcast (x, d) -> Col_broadcast (flatten x, flatten d)
  | Nonlinear (k, e) -> Nonlinear (k, flatten e)
  | Edge_score es -> Edge_score { es with mask = flatten es.mask; feats = flatten es.feats }

let rec eliminate_broadcasts expr =
  let expr =
    match expr with
    | Leaf _ -> expr
    | Mult es -> Mult (List.map eliminate_broadcasts es)
    | Add es -> Add (List.map eliminate_broadcasts es)
    | Row_broadcast (d, x) -> Mult [ eliminate_broadcasts d; eliminate_broadcasts x ]
    | Col_broadcast (x, d) -> Mult [ eliminate_broadcasts x; eliminate_broadcasts d ]
    | Nonlinear (k, e) -> Nonlinear (k, eliminate_broadcasts e)
    | Edge_score es ->
        Edge_score
          { es with
            mask = eliminate_broadcasts es.mask;
            feats = eliminate_broadcasts es.feats }
  in
  flatten expr

(* All ways to rewrite [expr] by distributing exactly one Mult chain over
   exactly one Add element inside it. *)
let rec distribute_once expr =
  match expr with
  | Leaf _ -> []
  | Mult es ->
      let here =
        List.concat
          (List.mapi
             (fun i e ->
               match e with
               | Add terms ->
                   let before = List.filteri (fun j _ -> j < i) es in
                   let after = List.filteri (fun j _ -> j > i) es in
                   let term_chain t =
                     match before @ (t :: after) with
                     | [ single ] -> single
                     | chain -> Mult chain
                   in
                   [ flatten (Add (List.map term_chain terms)) ]
               | Leaf _ | Mult _ | Row_broadcast _ | Col_broadcast _
               | Nonlinear _ | Edge_score _ ->
                   [])
             es)
      in
      let deeper =
        List.concat
          (List.mapi
             (fun i e ->
               List.map
                 (fun e' ->
                   flatten (Mult (List.mapi (fun j x -> if j = i then e' else x) es)))
                 (distribute_once e))
             es)
      in
      here @ deeper
  | Add es ->
      List.concat
        (List.mapi
           (fun i e ->
             List.map
               (fun e' ->
                 flatten (Add (List.mapi (fun j x -> if j = i then e' else x) es)))
               (distribute_once e))
           es)
  | Row_broadcast (d, x) ->
      List.map (fun x' -> Row_broadcast (d, x')) (distribute_once x)
  | Col_broadcast (x, d) ->
      List.map (fun x' -> Col_broadcast (x', d)) (distribute_once x)
  | Nonlinear (k, e) -> List.map (fun e' -> Nonlinear (k, e')) (distribute_once e)
  | Edge_score es ->
      List.map
        (fun feats' -> Edge_score { es with feats = feats' })
        (distribute_once es.feats)

let as_chain = function Mult es -> es | e -> [ e ]

let rec common_prefix_length a b =
  match (a, b) with
  | x :: resta, y :: restb when Matrix_ir.equal x y ->
      1 + common_prefix_length resta restb
  | _, _ -> 0

(* Factor [k] elements off the given end of every term of an Add. *)
let factor_add terms ~from_end k =
  let chains = List.map as_chain terms in
  let split chain =
    let n = List.length chain in
    if from_end then
      (List.filteri (fun i _ -> i < n - k) chain, List.filteri (fun i _ -> i >= n - k) chain)
    else (List.filteri (fun i _ -> i >= k) chain, List.filteri (fun i _ -> i < k) chain)
  in
  let parts = List.map split chains in
  let remainder_of rest =
    match rest with [] -> None | [ single ] -> Some single | chain -> Some (Mult chain)
  in
  let remainders = List.map (fun (rest, _) -> remainder_of rest) parts in
  if List.exists Option.is_none remainders then None
  else begin
    let inner = Add (List.map Option.get remainders) in
    let common = snd (List.hd parts) in
    let result = if from_end then Mult (inner :: common) else Mult (common @ [ inner ]) in
    Some (flatten result)
  end

let rec factor_once expr =
  match expr with
  | Leaf _ -> []
  | Add terms when List.length terms >= 2 -> (
      let chains = List.map as_chain terms in
      let suffix_len =
        List.fold_left
          (fun acc chain ->
            min acc (common_prefix_length (List.rev chain) (List.rev (List.hd chains))))
          max_int (List.tl chains)
      in
      let prefix_len =
        List.fold_left
          (fun acc chain -> min acc (common_prefix_length chain (List.hd chains)))
          max_int (List.tl chains)
      in
      let here =
        List.concat
          [ (if suffix_len >= 1 && suffix_len < max_int
               && List.for_all (fun c -> List.length c > suffix_len) chains
             then
               match factor_add terms ~from_end:true suffix_len with
               | Some e -> [ e ]
               | None -> []
             else []);
            (if prefix_len >= 1 && prefix_len < max_int
               && List.for_all (fun c -> List.length c > prefix_len) chains
             then
               match factor_add terms ~from_end:false prefix_len with
               | Some e -> [ e ]
               | None -> []
             else []) ]
      in
      let deeper =
        List.concat
          (List.mapi
             (fun i e ->
               List.map
                 (fun e' ->
                   flatten (Add (List.mapi (fun j x -> if j = i then e' else x) terms)))
                 (factor_once e))
             terms)
      in
      here @ deeper)
  | Add _ -> []
  | Mult es ->
      List.concat
        (List.mapi
           (fun i e ->
             List.map
               (fun e' ->
                 flatten (Mult (List.mapi (fun j x -> if j = i then e' else x) es)))
               (factor_once e))
           es)
  | Row_broadcast (d, x) -> List.map (fun x' -> Row_broadcast (d, x')) (factor_once x)
  | Col_broadcast (x, d) -> List.map (fun x' -> Col_broadcast (x', d)) (factor_once x)
  | Nonlinear (k, e) -> List.map (fun e' -> Nonlinear (k, e')) (factor_once e)
  | Edge_score es ->
      List.map (fun feats' -> Edge_score { es with feats = feats' }) (factor_once es.feats)

let variants expr =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add e =
    let k = key e in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out := e :: !out;
      true
    end
    else false
  in
  let rec close frontier =
    match frontier with
    | [] -> ()
    | e :: rest ->
        let next = List.filter add (distribute_once e @ factor_once e) in
        close (rest @ next)
  in
  let base = flatten expr in
  ignore (add base);
  let no_bcast = eliminate_broadcasts base in
  ignore (add no_bcast);
  close [ base; no_bcast ];
  List.rev !out
