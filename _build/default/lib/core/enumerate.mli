(** Exhaustive association-tree generation (paper, Algorithm 1).

    Walks the matrix IR depth-first; at a multiplication chain every
    rule-matching contiguous group of operands is a candidate reduction
    (pairs, plus the diagonal–sparse–diagonal triple that fuses into a rank-1
    SDDMM), each candidate spawning a recursive enumeration of the reduced
    chain. Every {!Rewrite.variants} form of the IR is enumerated and the
    resulting forest is deduplicated by canonical tree key.

    The rules mapping operand attributes to primitives (the paper's
    Appendix D) are:

    {v
    diag    . diag            -> DiagCombine        (diagonal)
    diag    . sparse          -> DiagScaleL         (sparse weighted)
    sparse  . diag            -> DiagScaleR         (sparse weighted)
    diag    . sparse . diag   -> SDDMM(rank 1)      (sparse weighted)
    sparse  . dense           -> g-SpMM             (dense)
    dense   . sparse          -> dense-sparse MM    (dense)
    diag    . dense           -> row-broadcast      (dense)
    dense   . diag            -> col-broadcast      (dense)
    dense   . dense           -> GEMM               (dense)
    v} *)

exception Too_many_trees of int

val forest : ?max_trees:int -> Matrix_ir.expr -> Assoc_tree.t list
(** All association trees of the expression (default [max_trees = 20000];
    raises {!Too_many_trees} beyond that). The result is non-empty for any
    well-formed IR and deduplicated. Raises {!Matrix_ir.Ill_formed} on a
    malformed IR. *)

val count : Matrix_ir.expr -> int
(** [List.length (forest e)] without building intermediate duplicates. *)
