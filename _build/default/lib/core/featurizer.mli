(** Runtime input featurizer (paper, Sec. IV-E1).

    Inspects the input graph once, concatenates the resulting statistics with
    the embedding sizes of the primitive instance being costed, and feeds the
    vector to the learned cost models. The extraction is timed — it is one of
    the two runtime overheads the paper reports (Sec. VI-C1). *)

type t = private {
  graph_features : float array;
  extraction_time : float;  (** seconds of wall-clock spent extracting *)
}

val extract : Granii_graph.Graph.t -> t
(** One O(n + nnz) pass over the graph. *)

val of_features : Granii_graph.Graph_features.t -> t
(** Wraps precomputed statistics (extraction time 0) — used when profiling
    already has the statistics. *)

val primitive_input : t -> dims:float * float * float -> float array
(** Final model input: graph features followed by the log-scaled size triple
    of the primitive instance. *)

val n_inputs : int
(** Length of the vectors {!primitive_input} produces. *)

val input_names : string array
