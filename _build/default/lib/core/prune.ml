type candidate = {
  tree : Assoc_tree.t;
  scenarios : Dim.scenario list;
}

type result = {
  promoted : candidate list;
  n_enumerated : int;
  n_pruned : int;
}

let round_flops x =
  (* Bucket sizes so float jitter cannot break multiset equality. *)
  Float.round (x *. 1024.) /. 1024.

let signature scenario ~nnz_per_node tree =
  let sig_of prim =
    (Primitive.name prim, round_flops (Primitive.symbolic_flops scenario ~nnz_per_node prim))
  in
  List.sort compare (List.map sig_of (Assoc_tree.primitives tree))

(* [subset a b]: every element of [a] occurs in [b] (multiset semantics,
   both sorted). *)
let rec subset a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | xa :: resta, xb :: restb ->
      let c = compare xa xb in
      if c = 0 then subset resta restb
      else if c > 0 then subset a restb
      else false

(* Same primitive-name multiset with sizes elementwise <= and at least one
   strictly smaller. Both signatures sorted, so names pair up positionally
   after grouping by name. *)
let smaller_same_prims a b =
  let names l = List.map fst l in
  if names a <> names b then false
  else begin
    let group l =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun (name, fl) ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt tbl name) in
          Hashtbl.replace tbl name (fl :: cur))
        l;
      tbl
    in
    let ga = group a and gb = group b in
    let all_le = ref true and any_lt = ref false in
    Hashtbl.iter
      (fun name fla ->
        let flb = Option.value ~default:[] (Hashtbl.find_opt gb name) in
        let fla = List.sort compare fla and flb = List.sort compare flb in
        List.iter2
          (fun x y ->
            if x > y then all_le := false;
            if x < y then any_lt := true)
          fla flb)
      ga;
    !all_le && !any_lt
  end

(* [dominates a b]: candidate with signature [a] makes [b] unprofitable. The
   [a_first] flag breaks ties between exact duplicates (keep the earlier). *)
let dominates ~a_first a b =
  if a = b then a_first
  else if List.length a < List.length b && subset a b then true
  else smaller_same_prims a b

let survivors_of_signatures sigs =
  let n = Array.length sigs in
  Array.init n (fun i ->
      let dominated = ref false in
      for j = 0 to n - 1 do
        if (not !dominated) && j <> i then
          if dominates ~a_first:(j < i) sigs.(j) sigs.(i) then dominated := true
      done;
      not !dominated)

let filter_nodes ?(nnz_per_node = 16.) nodes =
  let arr = Array.of_list nodes in
  let alive_anywhere =
    List.map
      (fun scenario ->
        survivors_of_signatures
          (Array.map
             (fun node -> signature scenario ~nnz_per_node (Assoc_tree.of_root node))
             arr))
      Dim.all_scenarios
  in
  let keep = ref [] in
  for i = Array.length arr - 1 downto 0 do
    if List.exists (fun alive -> alive.(i)) alive_anywhere then
      keep := arr.(i) :: !keep
  done;
  !keep

let run ?(nnz_per_node = 16.) trees =
  let arr = Array.of_list trees in
  let n = Array.length arr in
  let scenario_survivors scenario =
    survivors_of_signatures (Array.map (fun t -> signature scenario ~nnz_per_node t) arr)
  in
  let per_scenario =
    List.map (fun s -> (s, scenario_survivors s)) Dim.all_scenarios
  in
  let promoted = ref [] in
  for i = n - 1 downto 0 do
    let scenarios =
      List.filter_map
        (fun (s, alive) -> if alive.(i) then Some s else None)
        per_scenario
    in
    if scenarios <> [] then promoted := { tree = arr.(i); scenarios } :: !promoted
  done;
  { promoted = !promoted;
    n_enumerated = n;
    n_pruned = n - List.length !promoted }
