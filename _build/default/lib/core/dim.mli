(** Symbolic matrix dimensions.

    Matrices in the IR are sized in terms of the graph's node count and the
    layer's embedding sizes, which are unknown at compile time. The offline
    pruning stage (paper, Sec. IV-C) must nevertheless compare matrix sizes;
    it does so under the two embedding-size {e scenarios} the paper uses:
    input embedding larger-or-equal than the output, or smaller. *)

type t =
  | N      (** number of graph nodes *)
  | Kin    (** input embedding size of the layer *)
  | Kout   (** output embedding size of the layer *)
  | One
  | Const of int  (** a size fixed at model-definition time *)

type scenario =
  | Shrinking  (** {m K_{in} \ge K_{out}} *)
  | Growing    (** {m K_{in} < K_{out}} *)

val all_scenarios : scenario list

val eval : scenario -> t -> float
(** Representative numeric value used for input-oblivious size comparisons:
    [N] is large (65536) and the two embedding sizes are (512, 128) under
    [Shrinking] and (128, 512) under [Growing]. *)

type env = { n : int; nnz : int; k_in : int; k_out : int }
(** Concrete sizes available at runtime. *)

val instantiate : env -> t -> int
(** Resolve a symbolic dimension against runtime sizes. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_scenario : Format.formatter -> scenario -> unit
