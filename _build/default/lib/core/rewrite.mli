(** IR rewrite passes run before enumeration (paper, Sec. IV-B end).

    Two rewrites widen the re-association space:

    - {e broadcast elimination}: a row/column broadcast is a multiplication
      by a diagonal matrix; representing it as one removes the broadcast
      barrier and lets the diagonal re-associate freely (Fig. 6(c),
      Appendix C);
    - {e distribution}: a multiplication chain containing an addition can be
      distributed over it (and vice versa, factored), exposing e.g. GIN's
      choice between pre-adding {m (1{+}\epsilon) I + A} and aggregating the
      two terms separately.

    [variants] returns the original IR together with every rewritten form;
    the enumerator unions the candidates of all variants. *)

val flatten : Matrix_ir.expr -> Matrix_ir.expr
(** Merges nested multiplication chains ([Mult] inside [Mult]) and nested
    additions into single flat levels, and collapses singleton chains. *)

val eliminate_broadcasts : Matrix_ir.expr -> Matrix_ir.expr
(** Replaces every [Row_broadcast (d, x)] by [Mult [d; x]] and
    [Col_broadcast (x, d)] by [Mult [x; d]], then {!flatten}s. *)

val distribute_once : Matrix_ir.expr -> Matrix_ir.expr list
(** All IRs obtained by distributing one multiplication chain over one of its
    [Add] elements. *)

val factor_once : Matrix_ir.expr -> Matrix_ir.expr list
(** The inverse rewrite: for an [Add] whose terms all share a common chain
    prefix or suffix, factor it out
    ({m XS + YS \to (X + Y)S}). This is what exposes GIN's
    {m (1{+}\epsilon)I + \tilde A} pre-add composition from the dynamically
    written model. *)

val variants : Matrix_ir.expr -> Matrix_ir.expr list
(** The closure of the input under {!eliminate_broadcasts} and repeated
    {!distribute_once}, deduplicated by {!Matrix_ir.key}; the original
    (flattened) IR is always first. *)
