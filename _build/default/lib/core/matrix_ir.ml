type dense_sub = Data | Weight
type sparse_sub = Weighted | Unweighted | Diagonal
type attr = Dense of dense_sub | Sparse of sparse_sub

type nonlinear = Relu | Leaky_relu | Sigmoid | Edge_softmax | Log_softmax

type leaf = { name : string; rows : Dim.t; cols : Dim.t; attr : attr }

type expr =
  | Leaf of leaf
  | Mult of expr list
  | Add of expr list
  | Row_broadcast of expr * expr
  | Col_broadcast of expr * expr
  | Nonlinear of nonlinear * expr
  | Edge_score of { mask : expr; feats : expr; attn_src : leaf; attn_dst : leaf }

let adjacency ?(weighted = false) name =
  { name;
    rows = Dim.N;
    cols = Dim.N;
    attr = Sparse (if weighted then Weighted else Unweighted) }

let diagonal name = { name; rows = Dim.N; cols = Dim.N; attr = Sparse Diagonal }
let features name = { name; rows = Dim.N; cols = Dim.Kin; attr = Dense Data }

let weight ?(rows = Dim.Kin) ?(cols = Dim.Kout) name =
  { name; rows; cols; attr = Dense Weight }

let dense_leaf name rows cols = { name; rows; cols; attr = Dense Data }

exception Ill_formed of string

let ill fmt = Format.kasprintf (fun s -> raise (Ill_formed s)) fmt

let rec infer = function
  | Leaf l -> ((l.rows, l.cols), l.attr)
  | Mult es ->
      if List.length es < 2 then ill "Mult chain must have at least two elements";
      let shapes = List.map infer es in
      let rec check = function
        | ((_, c1), _) :: (((r2, _), _) as next) :: rest ->
            if not (Dim.equal c1 r2) then
              ill "Mult: inner dimension mismatch (%a vs %a)" Dim.pp c1 Dim.pp r2;
            check (next :: rest)
        | [ _ ] | [] -> ()
      in
      check shapes;
      let (r0, _), _ = List.hd shapes in
      let (_, cn), _ = List.nth shapes (List.length shapes - 1) in
      let attrs = List.map snd shapes in
      let result_attr =
        if List.exists (function Dense _ -> true | Sparse _ -> false) attrs then
          Dense Data
        else if List.for_all (function Sparse Diagonal -> true | _ -> false) attrs
        then Sparse Diagonal
        else Sparse Weighted
      in
      ((r0, cn), result_attr)
  | Add es ->
      if List.length es < 2 then ill "Add must have at least two operands";
      let shapes = List.map infer es in
      let (r0, c0), _ = List.hd shapes in
      List.iter
        (fun ((r, c), _) ->
          if not (Dim.equal r r0 && Dim.equal c c0) then
            ill "Add: operand shape mismatch")
        shapes;
      let attrs = List.map snd shapes in
      let result_attr =
        if List.exists (function Dense _ -> true | Sparse _ -> false) attrs then
          Dense Data
        else if List.for_all (function Sparse Diagonal -> true | _ -> false) attrs
        then Sparse Diagonal
        else Sparse Weighted
      in
      ((r0, c0), result_attr)
  | Row_broadcast (d, x) ->
      let (dr, _), dattr = infer d in
      let (xr, xc), xattr = infer x in
      (match dattr with
      | Sparse Diagonal -> ()
      | Dense _ | Sparse (Weighted | Unweighted) ->
          ill "Row_broadcast: first operand must be diagonal");
      (match xattr with
      | Dense _ -> ()
      | Sparse _ -> ill "Row_broadcast: second operand must be dense");
      if not (Dim.equal dr xr) then ill "Row_broadcast: row dimension mismatch";
      ((xr, xc), Dense Data)
  | Col_broadcast (x, d) ->
      let (xr, xc), xattr = infer x in
      let (dr, _), dattr = infer d in
      (match dattr with
      | Sparse Diagonal -> ()
      | Dense _ | Sparse (Weighted | Unweighted) ->
          ill "Col_broadcast: second operand must be diagonal");
      (match xattr with
      | Dense _ -> ()
      | Sparse _ -> ill "Col_broadcast: first operand must be dense");
      if not (Dim.equal xc dr) then ill "Col_broadcast: column dimension mismatch";
      ((xr, xc), Dense Data)
  | Nonlinear (kind, e) ->
      let shape, attr = infer e in
      (match (kind, attr) with
      | Edge_softmax, Sparse (Weighted | Unweighted) -> (shape, Sparse Weighted)
      | Edge_softmax, (Dense _ | Sparse Diagonal) ->
          ill "Edge_softmax applies to sparse edge scores"
      | (Relu | Leaky_relu | Sigmoid | Log_softmax), Dense _ -> (shape, Dense Data)
      | (Relu | Leaky_relu | Sigmoid | Log_softmax), Sparse _ ->
          ill "dense non-linearity applied to a sparse expression")
  | Edge_score { mask; feats; attn_src; attn_dst } ->
      let (mr, mc), mattr = infer mask in
      let (fr, fc), fattr = infer feats in
      (match mattr with
      | Sparse (Weighted | Unweighted) -> ()
      | Dense _ | Sparse Diagonal -> ill "Edge_score: mask must be sparse");
      (match fattr with
      | Dense _ -> ()
      | Sparse _ -> ill "Edge_score: feats must be dense");
      if not (Dim.equal mr fr && Dim.equal mc fr) then
        ill "Edge_score: mask and feature dimensions disagree";
      List.iter
        (fun (l : leaf) ->
          if not (Dim.equal l.rows fc && Dim.equal l.cols Dim.One) then
            ill "Edge_score: attention vector must be (feat-dim x 1)")
        [ attn_src; attn_dst ];
      ((mr, mc), Sparse Weighted)

let shape e = fst (infer e)
let attr_of e = snd (infer e)

let is_diagonal e = match attr_of e with Sparse Diagonal -> true | _ -> false
let is_sparse e = match attr_of e with Sparse _ -> true | Dense _ -> false
let is_dense e = match attr_of e with Dense _ -> true | Sparse _ -> false

let rec leaves = function
  | Leaf l -> [ l ]
  | Mult es | Add es -> List.concat_map leaves es
  | Row_broadcast (a, b) | Col_broadcast (a, b) -> leaves a @ leaves b
  | Nonlinear (_, e) -> leaves e
  | Edge_score { mask; feats; attn_src; attn_dst } ->
      leaves mask @ leaves feats @ [ attn_src; attn_dst ]

let pp_nonlinear ppf = function
  | Relu -> Format.fprintf ppf "relu"
  | Leaky_relu -> Format.fprintf ppf "leaky_relu"
  | Sigmoid -> Format.fprintf ppf "sigmoid"
  | Edge_softmax -> Format.fprintf ppf "edge_softmax"
  | Log_softmax -> Format.fprintf ppf "log_softmax"

let pp_attr ppf = function
  | Dense Data -> Format.fprintf ppf "dense:data"
  | Dense Weight -> Format.fprintf ppf "dense:weight"
  | Sparse Weighted -> Format.fprintf ppf "sparse:weighted"
  | Sparse Unweighted -> Format.fprintf ppf "sparse:unweighted"
  | Sparse Diagonal -> Format.fprintf ppf "sparse:diagonal"

let rec pp ppf = function
  | Leaf l -> Format.fprintf ppf "%s" l.name
  | Mult es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " . ") pp)
        es
  | Add es ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ") pp)
        es
  | Row_broadcast (d, x) -> Format.fprintf ppf "(%a (x)r %a)" pp d pp x
  | Col_broadcast (x, d) -> Format.fprintf ppf "(%a (x)c %a)" pp x pp d
  | Nonlinear (k, e) -> Format.fprintf ppf "%a(%a)" pp_nonlinear k pp e
  | Edge_score { mask; feats; attn_src; attn_dst } ->
      Format.fprintf ppf "atten(%a, %a, %s, %s)" pp mask pp feats attn_src.name
        attn_dst.name

let key e = Format.asprintf "%a" pp e

let equal a b = String.equal (key a) (key b)
