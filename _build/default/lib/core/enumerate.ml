open Assoc_tree

exception Too_many_trees of int

let is_diag node =
  match node_attr node with
  | Matrix_ir.Sparse Matrix_ir.Diagonal -> true
  | Matrix_ir.Sparse _ | Matrix_ir.Dense _ -> false

let is_sparse_nondiag node =
  match node_attr node with
  | Matrix_ir.Sparse Matrix_ir.Diagonal -> false
  | Matrix_ir.Sparse _ -> true
  | Matrix_ir.Dense _ -> false

let is_weighted node =
  match node_attr node with
  | Matrix_ir.Sparse Matrix_ir.Weighted -> true
  | Matrix_ir.Sparse _ | Matrix_ir.Dense _ -> false

let is_dense node =
  match node_attr node with
  | Matrix_ir.Dense _ -> true
  | Matrix_ir.Sparse _ -> false

(* The pair rules of Appendix D: which primitive reduces two adjacent
   chain operands, and the attribute of the result. *)
let reduce_pair left right =
  let lr, _lc = node_shape left and _rr, rc = node_shape right in
  let mk prim attr = Some (mk_op ~prim ~args:[ left; right ] ~rows:lr ~cols:rc ~attr) in
  if is_diag left && is_diag right then
    mk Primitive.Diag_combine (Matrix_ir.Sparse Matrix_ir.Diagonal)
  else if is_diag left && is_sparse_nondiag right then
    mk (Primitive.Diag_scale { side = `Left }) (Matrix_ir.Sparse Matrix_ir.Weighted)
  else if is_sparse_nondiag left && is_diag right then
    mk (Primitive.Diag_scale { side = `Right }) (Matrix_ir.Sparse Matrix_ir.Weighted)
  else if is_sparse_nondiag left && is_dense right then
    mk
      (Primitive.Spmm { k = rc; weighted = is_weighted left })
      (Matrix_ir.Dense Matrix_ir.Data)
  else if is_dense left && is_sparse_nondiag right then
    mk (Primitive.Dense_sparse_mm { m = lr }) (Matrix_ir.Dense Matrix_ir.Data)
  else if is_diag left && is_dense right then
    mk (Primitive.Row_broadcast { k = rc }) (Matrix_ir.Dense Matrix_ir.Data)
  else if is_dense left && is_diag right then
    let _, lc = node_shape left in
    mk (Primitive.Col_broadcast { k = lc }) (Matrix_ir.Dense Matrix_ir.Data)
  else if is_dense left && is_dense right then
    let _, lc = node_shape left in
    mk
      (Primitive.Gemm { m = lr; k = lc; n = rc })
      (Matrix_ir.Dense Matrix_ir.Data)
  else None

let reduce_triple a b c =
  if is_diag a && is_sparse_nondiag b && is_diag c then
    let rows, _ = node_shape a and _, cols = node_shape c in
    Some
      (mk_op ~prim:Primitive.Sddmm_rank1 ~args:[ a; b; c ] ~rows ~cols
         ~attr:(Matrix_ir.Sparse Matrix_ir.Weighted))
  else None

let chain_key chain = String.concat "|" (List.map node_key chain)

(* Cartesian product of alternative lists, cap-checked by the caller. *)
let cartesian (lists : 'a list list) : 'a list list =
  List.fold_right
    (fun alts acc ->
      List.concat_map (fun a -> List.map (fun rest -> a :: rest) acc) alts)
    lists [ [] ]

let dedup_nodes nodes =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      let k = node_key n in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    nodes

let forest ?(max_trees = 20_000) expr =
  (* Validate the IR up front so enumeration can assume well-formedness. *)
  ignore (Matrix_ir.infer expr);
  let memo : (string, node list) Hashtbl.t = Hashtbl.create 64 in
  let budget = ref max_trees in
  let spend n =
    budget := !budget - n;
    if !budget < 0 then raise (Too_many_trees max_trees)
  in
  (* Sub-problem dominance filter (see local_prune below): applied to every
     span's alternative set so deep chains (multi-hop SGC/TAGCN) stay
     polynomial instead of Catalan. *)
  let chain_prune nodes =
    if List.length nodes <= 48 then nodes else Prune.filter_nodes nodes
  in
  (* Exhaustive re-association of a chain via dynamic programming over
     contiguous spans (the matrix-chain recurrence, keeping every
     rule-admissible alternative instead of one optimum). A span's
     alternatives are: every binary split whose two sides reduce by a pair
     rule, plus every ternary split matching the diag-sparse-diag SDDMM
     rule. *)
  let reduce_chain chain =
    match chain with
    | [] -> []
    | [ single ] -> [ single ]
    | _ -> (
        let ckey = chain_key chain in
        match Hashtbl.find_opt memo ckey with
        | Some cached -> cached
        | None ->
            let arr = Array.of_list chain in
            let n = Array.length arr in
            let span = Array.make_matrix n n [] in
            for i = 0 to n - 1 do
              span.(i).(i) <- [ arr.(i) ]
            done;
            for len = 2 to n do
              for i = 0 to n - len do
                let j = i + len - 1 in
                let results = ref [] in
                for split = i to j - 1 do
                  List.iter
                    (fun left ->
                      List.iter
                        (fun right ->
                          match reduce_pair left right with
                          | Some node -> results := node :: !results
                          | None -> ())
                        span.(split + 1).(j))
                    span.(i).(split)
                done;
                for a = i to j - 2 do
                  for b = a + 1 to j - 1 do
                    (* the ternary rule only fires on diag . sparse . diag:
                       prefilter each side so dense-heavy spans cost nothing *)
                    let lefts = List.filter is_diag span.(i).(a) in
                    if lefts <> [] then begin
                      let rights = List.filter is_diag span.(b + 1).(j) in
                      if rights <> [] then begin
                        let mids = List.filter is_sparse_nondiag span.(a + 1).(b) in
                        List.iter
                          (fun left ->
                            List.iter
                              (fun mid ->
                                List.iter
                                  (fun right ->
                                    match reduce_triple left mid right with
                                    | Some node -> results := node :: !results
                                    | None -> ())
                                  rights)
                              mids)
                          lefts
                      end
                    end
                  done
                done;
                span.(i).(j) <- chain_prune (dedup_nodes !results)
              done
            done;
            let out = span.(0).(n - 1) in
            spend (List.length out);
            Hashtbl.add memo ckey out;
            out)
  in
  (* Keep sub-problem alternative sets in check: past a small threshold,
     apply the input-oblivious dominance filter locally — a dominated
     sub-candidate can only produce dominated full candidates. *)
  let local_prune nodes =
    if List.length nodes <= 48 then nodes else Prune.filter_nodes nodes
  in
  (* Cost key used when an addition's cartesian product must be budgeted:
     total symbolic FLOPs of the sub-tree under a scenario. *)
  let sym_cost scenario node =
    List.fold_left
      (fun acc prim -> acc +. Primitive.symbolic_flops scenario ~nnz_per_node:16. prim)
      0.
      (Assoc_tree.primitives (Assoc_tree.of_root node))
  in
  let cheapest per nodes =
    if List.length nodes <= per then nodes
    else begin
      let pick scenario =
        let sorted =
          List.sort
            (fun a b -> compare (sym_cost scenario a) (sym_cost scenario b))
            nodes
        in
        List.filteri (fun i _ -> i < max 1 ((per + 1) / 2)) sorted
      in
      dedup_nodes (List.concat_map pick Dim.all_scenarios)
    end
  in
  (* Bound the product of alternative counts across addition terms: if the
     exact cartesian exceeds the budget, keep each term's cheapest
     candidates per scenario. K <= 2 models stay exact; this only engages
     for deep extensions (tagcn_k >= 3). *)
  let budget_lists ~budget lists =
    let product =
      List.fold_left (fun acc l -> acc * Stdlib.max 1 (List.length l)) 1 lists
    in
    if product <= budget then lists
    else begin
      let per =
        Stdlib.max 2
          (int_of_float
             (Float.pow (float_of_int budget) (1. /. float_of_int (List.length lists))))
      in
      List.map (cheapest per) lists
    end
  in
  let rec enum (e : Matrix_ir.expr) : node list =
    match e with
    | Matrix_ir.Leaf l -> [ Leaf l ]
    | Matrix_ir.Nonlinear (kind, inner) ->
        let wrap node =
          let rows, cols = node_shape node in
          match kind with
          | Matrix_ir.Edge_softmax ->
              mk_op ~prim:Primitive.Edge_softmax ~args:[ node ] ~rows ~cols
                ~attr:(Matrix_ir.Sparse Matrix_ir.Weighted)
          | Matrix_ir.Relu | Matrix_ir.Leaky_relu | Matrix_ir.Sigmoid
          | Matrix_ir.Log_softmax ->
              mk_op
                ~prim:(Primitive.Dense_map { kind; m = rows; k = cols })
                ~args:[ node ] ~rows ~cols ~attr:(Matrix_ir.Dense Matrix_ir.Data)
        in
        List.map wrap (enum inner)
    | Matrix_ir.Add terms ->
        let alts =
          cartesian
            (budget_lists ~budget:2048
               (List.map (fun t -> local_prune (enum t)) terms))
        in
        local_prune
        @@ List.map
          (fun args ->
            let rows, cols = node_shape (List.hd args) in
            let any_diag = List.exists is_diag args in
            let all_sparse = List.for_all (fun a -> not (is_dense a)) args in
            let prim, attr =
              if all_sparse then
                ( Primitive.Sparse_add { diag = any_diag },
                  Matrix_ir.Sparse Matrix_ir.Weighted )
              else
                (Primitive.Dense_add { m = rows; k = cols }, Matrix_ir.Dense Matrix_ir.Data)
            in
            mk_op ~prim ~args ~rows ~cols ~attr)
          alts
    | Matrix_ir.Mult chain_exprs ->
        let alts = cartesian (List.map enum chain_exprs) in
        local_prune (dedup_nodes (List.concat_map reduce_chain alts))
    | Matrix_ir.Row_broadcast (d, x) ->
        List.concat_map
          (fun dn ->
            List.map
              (fun xn ->
                let rows, cols = node_shape xn in
                mk_op
                  ~prim:(Primitive.Row_broadcast { k = cols })
                  ~args:[ dn; xn ] ~rows ~cols ~attr:(Matrix_ir.Dense Matrix_ir.Data))
              (enum x))
          (enum d)
    | Matrix_ir.Col_broadcast (x, d) ->
        List.concat_map
          (fun xn ->
            List.map
              (fun dn ->
                let rows, cols = node_shape xn in
                mk_op
                  ~prim:(Primitive.Col_broadcast { k = cols })
                  ~args:[ xn; dn ] ~rows ~cols ~attr:(Matrix_ir.Dense Matrix_ir.Data))
              (enum d))
          (enum x)
    | Matrix_ir.Edge_score { mask; feats; attn_src; attn_dst } ->
        List.concat_map
          (fun mn ->
            List.map
              (fun fn ->
                let rows, cols = node_shape mn in
                let _, fk = node_shape fn in
                mk_op
                  ~prim:(Primitive.Edge_score { k = fk })
                  ~args:[ mn; fn; Leaf attn_src; Leaf attn_dst ]
                  ~rows ~cols ~attr:(Matrix_ir.Sparse Matrix_ir.Weighted))
              (enum feats))
          (enum mask)
  in
  let roots =
    List.concat_map
      (fun variant -> enum variant)
      (Rewrite.variants expr)
  in
  List.map of_root (dedup_nodes roots)

let count expr = List.length (forest expr)
