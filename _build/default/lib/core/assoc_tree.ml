type node = Leaf of Matrix_ir.leaf | Op of op

and op = {
  prim : Primitive.t;
  args : node list;
  rows : Dim.t;
  cols : Dim.t;
  attr : Matrix_ir.attr;
  okey : string;
}

type t = { root : node }

let node_key = function
  | Leaf l -> l.Matrix_ir.name
  | Op o -> o.okey

let mk_op ~prim ~args ~rows ~cols ~attr =
  let okey =
    Format.asprintf "%a(%s)" Primitive.pp prim
      (String.concat "," (List.map node_key args))
  in
  Op { prim; args; rows; cols; attr; okey }

let node_shape = function
  | Leaf l -> (l.Matrix_ir.rows, l.Matrix_ir.cols)
  | Op o -> (o.rows, o.cols)

let node_attr = function
  | Leaf l -> l.Matrix_ir.attr
  | Op o -> o.attr

let of_root root = { root }

let ops t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec walk = function
    | Leaf _ -> ()
    | Op o ->
        if not (Hashtbl.mem seen o.okey) then begin
          Hashtbl.add seen o.okey ();
          List.iter walk o.args;
          acc := o :: !acc
        end
  in
  walk t.root;
  List.rev !acc

let primitives t = List.map (fun o -> o.prim) (ops t)

let tree_key t = node_key t.root

let leaves t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec walk = function
    | Leaf l ->
        if not (Hashtbl.mem seen l.Matrix_ir.name) then begin
          Hashtbl.add seen l.Matrix_ir.name ();
          acc := l :: !acc
        end
    | Op o -> List.iter walk o.args
  in
  walk t.root;
  List.rev !acc

let rec is_graph_only = function
  | Leaf l -> (
      match l.Matrix_ir.attr with
      | Matrix_ir.Sparse _ -> true
      | Matrix_ir.Dense _ -> false)
  | Op o -> List.for_all is_graph_only o.args

let pp ppf t = Format.fprintf ppf "%s" (tree_key t)
