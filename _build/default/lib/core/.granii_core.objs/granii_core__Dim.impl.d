lib/core/dim.ml: Format
