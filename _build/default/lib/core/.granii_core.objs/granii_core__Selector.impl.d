lib/core/selector.ml: Codegen Cost_model Dim Granii_hw List Printf
