lib/core/primitive.mli: Dim Format Granii_hw Matrix_ir
