lib/core/matrix_ir.ml: Dim Format List String
