lib/core/enumerate.ml: Array Assoc_tree Dim Float Hashtbl List Matrix_ir Primitive Prune Rewrite Stdlib String
