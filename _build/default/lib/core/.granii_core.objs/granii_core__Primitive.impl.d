lib/core/primitive.ml: Dim Format Granii_hw Matrix_ir
