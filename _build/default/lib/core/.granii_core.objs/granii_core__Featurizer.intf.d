lib/core/featurizer.mli: Granii_graph
