lib/core/codegen.ml: Assoc_tree Dim Format List Plan Primitive Printf Prune String
