lib/core/granii.ml: Codegen Dim Enumerate Executor Featurizer Granii_graph Granii_hw List Logs Plan Prune Rewrite Selector
