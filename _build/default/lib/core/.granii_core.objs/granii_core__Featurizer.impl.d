lib/core/featurizer.ml: Array Granii_graph Granii_hw
