lib/core/cost_model.ml: Featurizer Fun Granii_hw Granii_ml Hashtbl List Plan Primitive
