lib/core/profiling.ml: Array Dim Executor Featurizer Float Fun Granii_graph Granii_hw Granii_ml Granii_sparse Granii_tensor Hashtbl List Matrix_ir Primitive
