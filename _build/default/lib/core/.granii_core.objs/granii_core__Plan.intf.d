lib/core/plan.mli: Assoc_tree Format Primitive
