lib/core/rewrite.mli: Matrix_ir
