lib/core/codegen.mli: Assoc_tree Dim Format Plan Prune
