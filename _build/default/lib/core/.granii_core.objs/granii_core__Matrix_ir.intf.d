lib/core/matrix_ir.mli: Dim Format
