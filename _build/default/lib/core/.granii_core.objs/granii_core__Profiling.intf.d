lib/core/profiling.mli: Granii_graph Granii_hw Granii_ml Primitive
