lib/core/prune.ml: Array Assoc_tree Dim Float Hashtbl List Option Primitive
