lib/core/rewrite.ml: Hashtbl List Matrix_ir Option
