lib/core/prune.mli: Assoc_tree Dim
