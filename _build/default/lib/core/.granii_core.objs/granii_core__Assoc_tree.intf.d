lib/core/assoc_tree.mli: Dim Format Matrix_ir Primitive
