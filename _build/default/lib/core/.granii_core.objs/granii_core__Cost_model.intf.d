lib/core/cost_model.mli: Dim Featurizer Granii_hw Granii_ml Plan Primitive Profiling
