lib/core/executor.mli: Dim Format Granii_graph Granii_hw Granii_sparse Granii_tensor Plan Primitive
