lib/core/dim.mli: Format
