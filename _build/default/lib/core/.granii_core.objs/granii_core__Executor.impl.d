lib/core/executor.ml: Array Format Granii_graph Granii_hw Granii_sparse Granii_tensor Hashtbl List Matrix_ir Plan Primitive
