lib/core/granii.mli: Codegen Cost_model Dim Executor Featurizer Granii_graph Granii_hw Logs Matrix_ir Plan Selector
