lib/core/granii.mli: Codegen Cost_model Dim Executor Featurizer Granii_graph Granii_hw Granii_tensor Logs Matrix_ir Plan Selector
