lib/core/selector.mli: Codegen Cost_model Dim Featurizer
