lib/core/enumerate.mli: Assoc_tree Matrix_ir
