lib/core/plan.ml: Assoc_tree Format Hashtbl List Matrix_ir Primitive String
