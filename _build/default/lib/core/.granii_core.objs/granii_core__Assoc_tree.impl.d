lib/core/assoc_tree.ml: Dim Format Hashtbl List Matrix_ir Primitive String
