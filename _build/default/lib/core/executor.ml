module Dense = Granii_tensor.Dense
module Vector = Granii_tensor.Vector
module Csr = Granii_sparse.Csr
module Coo = Granii_sparse.Coo
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module Sparse_ops = Granii_sparse.Sparse_ops
module K = Granii_hw.Kernel_model

type value =
  | Vdense of Dense.t
  | Vsparse of Csr.t
  | Vdiag of Vector.t

type timing = Measure | Simulate of Granii_hw.Hw_profile.t

type report = {
  output : value;
  setup_time : float;
  iteration_time : float;
  per_step : (Primitive.t * Plan.phase * float) list;
  intermediates : (int * value) list;
}

exception Execution_error of string

let err fmt = Format.kasprintf (fun s -> raise (Execution_error s)) fmt

let shape_of = function
  | Vdense d -> Dense.dims d
  | Vsparse s -> (s.Csr.n_rows, s.Csr.n_cols)
  | Vdiag v -> (Array.length v, Array.length v)

let pp_value ppf = function
  | Vdense d ->
      let r, c = Dense.dims d in
      Format.fprintf ppf "dense %dx%d" r c
  | Vsparse s -> Csr.pp ppf s
  | Vdiag v -> Format.fprintf ppf "diag n=%d" (Array.length v)

let dense = function Vdense d -> d | v -> err "expected dense, got %a" pp_value v
let sparse = function Vsparse s -> s | v -> err "expected sparse, got %a" pp_value v
let diag = function Vdiag d -> d | v -> err "expected diagonal, got %a" pp_value v

let diag_to_csr v =
  let n = Array.length v in
  Csr.of_coo (Coo.make ~n_rows:n ~n_cols:n (Array.init n (fun i -> (i, i, v.(i)))))

(* GAT's attention function: per stored edge (i, j),
   leaky_relu(a_src . feats_i + a_dst . feats_j). *)
let edge_score ?pool mask feats a_src a_dst =
  let s = Dense.matmul ?pool feats a_src and t = Dense.matmul ?pool feats a_dst in
  let count = Csr.nnz mask in
  let out = Array.make count 0. in
  Granii_tensor.Parallel.rows_weighted ?pool ~prefix:mask.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let si = Dense.get s i 0 in
        for p = mask.Csr.row_ptr.(i) to mask.Csr.row_ptr.(i + 1) - 1 do
          let x = si +. Dense.get t (mask.Csr.col_idx.(p)) 0 in
          out.(p) <- (if x > 0. then x else 0.2 *. x)
        done
      done);
  Csr.with_values mask out

let apply_nonlinear ?pool kind d =
  match kind with
  | Matrix_ir.Relu -> Dense.relu ?pool d
  | Matrix_ir.Leaky_relu -> Dense.leaky_relu ?pool d
  | Matrix_ir.Sigmoid -> Dense.sigmoid ?pool d
  | Matrix_ir.Log_softmax -> Dense.log_softmax_rows ?pool d
  | Matrix_ir.Edge_softmax -> err "edge_softmax reached dense map"

let exec_prim ?pool (prim : Primitive.t) (graph : Granii_graph.Graph.t) args =
  match (prim, args) with
  | Primitive.Gemm _, [ a; b ] -> Vdense (Dense.matmul ?pool (dense a) (dense b))
  | Primitive.Spmm _, [ a; b ] -> Vdense (Spmm.run ?pool (sparse a) (dense b))
  | Primitive.Dense_sparse_mm _, [ a; b ] ->
      Vdense (Spmm.run_transposed ?pool (dense a) (sparse b))
  | Primitive.Sddmm_rank1, [ dl; a; dr ] ->
      Vsparse (Sddmm.rank1 ?pool (sparse a) (diag dl) (diag dr))
  | Primitive.Diag_scale { side = `Left }, [ d; a ] ->
      Vsparse (Sparse_ops.scale_rows ?pool (diag d) (sparse a))
  | Primitive.Diag_scale { side = `Right }, [ a; d ] ->
      Vsparse (Sparse_ops.scale_cols ?pool (sparse a) (diag d))
  | Primitive.Row_broadcast _, [ d; x ] ->
      Vdense (Dense.row_broadcast ?pool (diag d) (dense x))
  | Primitive.Col_broadcast _, [ x; d ] ->
      Vdense (Dense.col_broadcast ?pool (dense x) (diag d))
  | Primitive.Diag_combine, [ a; b ] -> Vdiag (Vector.map2 ( *. ) (diag a) (diag b))
  | Primitive.Sparse_add _, parts ->
      let as_csr = function
        | Vdiag d -> diag_to_csr d
        | Vsparse s -> s
        | Vdense _ -> err "sparse_add over a dense operand"
      in
      let csrs = List.map as_csr parts in
      (match csrs with
      | [] -> err "sparse_add with no operands"
      | first :: rest -> Vsparse (List.fold_left Sparse_ops.add first rest))
  | Primitive.Dense_add _, parts -> (
      match List.map dense parts with
      | [] -> err "dense_add with no operands"
      | first :: rest ->
          Vdense (List.fold_left (fun acc d -> Dense.add ?pool acc d) first rest))
  | Primitive.Edge_score _, [ mask; feats; a_src; a_dst ] ->
      Vsparse (edge_score ?pool (sparse mask) (dense feats) (dense a_src) (dense a_dst))
  | Primitive.Edge_softmax, [ a ] -> Vsparse (Sparse_ops.row_softmax ?pool (sparse a))
  | Primitive.Dense_map { kind; _ }, [ a ] ->
      Vdense (apply_nonlinear ?pool kind (dense a))
  | Primitive.Degree { power; _ }, [ _graph_token ] -> (
      match power with
      | Primitive.Inv_sqrt -> Vdiag (Granii_graph.Graph.norm_inv_sqrt graph)
      | Primitive.Inv ->
          Vdiag
            (Granii_tensor.Vector.pow (-1.)
               (Granii_graph.Graph.degrees_tilde graph)))
  | prim, args ->
      err "primitive %a applied to %d arguments" Primitive.pp prim (List.length args)

let apply ?pool prim graph args = exec_prim ?pool prim graph args

(* Kernels of a step, sized from the actual operand values (so sampling or
   precomputed sparse intermediates are charged their true nnz). *)
let kernels_of_step (prim : Primitive.t) (graph : Granii_graph.Graph.t) args result =
  let nnz_of v = Csr.nnz (sparse v) in
  let dense_dims v = Dense.dims (dense v) in
  match (prim, args) with
  | Primitive.Gemm _, [ a; b ] ->
      let m, k = dense_dims a and _, n = dense_dims b in
      [ K.Gemm { m; k; n } ]
  | Primitive.Spmm { weighted; _ }, [ a; b ] ->
      let rows = (sparse a).Csr.n_rows and _, k = dense_dims b in
      [ K.Spmm { rows; nnz = nnz_of a; k; weighted } ]
  | Primitive.Dense_sparse_mm _, [ a; b ] ->
      let rows, k = dense_dims a in
      [ K.Dense_sparse_mm { rows; nnz = nnz_of b; cols = (sparse b).Csr.n_cols; k } ]
  | Primitive.Sddmm_rank1, [ _; a; _ ] -> [ K.Sddmm { nnz = nnz_of a; k = 1 } ]
  | Primitive.Diag_scale _, [ a; b ] ->
      let nnz = match a with Vsparse s -> Csr.nnz s | _ -> nnz_of b in
      [ K.Diag_scale_sparse { nnz } ]
  | Primitive.Row_broadcast _, [ _; x ] ->
      let n, k = dense_dims x in
      [ K.Row_broadcast { n; k } ]
  | Primitive.Col_broadcast _, [ x; _ ] ->
      let n, k = dense_dims x in
      [ K.Col_broadcast { n; k } ]
  | Primitive.Diag_combine, [ a; _ ] -> [ K.Diag_combine { n = Array.length (diag a) } ]
  | Primitive.Sparse_add _, _ ->
      let nnz = match result with Vsparse s -> Csr.nnz s | _ -> 0 in
      [ K.Diag_scale_sparse { nnz } ]
  | Primitive.Dense_add _, (first :: _ as parts) ->
      let n, k = dense_dims first in
      [ K.Elementwise { n; k; flops_per_elt = float_of_int (List.length parts - 1) } ]
  | Primitive.Edge_score _, [ mask; feats; _; _ ] ->
      let n, k = dense_dims feats in
      [ K.Gemm { m = n; k; n = 1 };
        K.Gemm { m = n; k; n = 1 };
        K.Sddmm { nnz = nnz_of mask; k = 1 } ]
  | Primitive.Edge_softmax, [ a ] -> [ K.Edge_softmax { nnz = nnz_of a } ]
  | Primitive.Dense_map { kind; _ }, [ a ] ->
      let n, k = dense_dims a in
      let flops_per_elt =
        match kind with
        | Matrix_ir.Relu -> 1.
        | Matrix_ir.Leaky_relu -> 2.
        | Matrix_ir.Sigmoid -> 10.
        | Matrix_ir.Log_softmax | Matrix_ir.Edge_softmax -> 12.
      in
      [ K.Elementwise { n; k; flops_per_elt } ]
  | Primitive.Degree { binned; _ }, _ ->
      let n = Granii_graph.Graph.n_nodes graph in
      let nnz = Granii_graph.Graph.n_edges graph + n in
      if binned then
        [ K.Degree_binning
            { n; nnz; avg_collisions = float_of_int nnz /. float_of_int (max n 1) } ]
      else [ K.Degree_rowptr { n } ]
  | prim, args ->
      err "kernels: primitive %a applied to %d arguments" Primitive.pp prim
        (List.length args)

let run ?(seed = 0) ?pool ~timing ~graph ~bindings (plan : Plan.t) =
  let results : (int, value) Hashtbl.t = Hashtbl.create 16 in
  let lookup = function
    | Plan.Computed i -> (
        match Hashtbl.find_opt results i with
        | Some v -> v
        | None -> err "step t%d used before being computed" i)
    | Plan.Input "__graph__" ->
        (* Token argument of Degree steps; its value is never inspected. *)
        Vsparse graph.Granii_graph.Graph.adj
    | Plan.Input name -> (
        match List.assoc_opt name bindings with
        | Some v -> v
        | None -> err "unbound input %s" name)
  in
  let setup_time = ref 0. and iteration_time = ref 0. in
  let per_step = ref [] in
  List.iter
    (fun (s : Plan.step) ->
      let args = List.map lookup s.Plan.args in
      let value, elapsed =
        match timing with
        | Measure ->
            let v, t =
              Granii_hw.Timer.measure (fun () -> exec_prim ?pool s.Plan.prim graph args)
            in
            (v, t)
        | Simulate profile ->
            let v = exec_prim ?pool s.Plan.prim graph args in
            let kernels = kernels_of_step s.Plan.prim graph args v in
            let threads =
              match pool with
              | None -> 1
              | Some p -> Granii_tensor.Parallel.threads p
            in
            let t =
              List.fold_left
                (fun acc k ->
                  acc +. K.time_noisy ~threads profile ~seed:(seed + s.Plan.idx) k)
                0. kernels
            in
            (v, t)
      in
      Hashtbl.replace results s.Plan.idx value;
      (match s.Plan.phase with
      | Plan.Setup -> setup_time := !setup_time +. elapsed
      | Plan.Per_iteration -> iteration_time := !iteration_time +. elapsed);
      per_step := (s.Plan.prim, s.Plan.phase, elapsed) :: !per_step)
    plan.Plan.steps;
  { output = lookup plan.Plan.output;
    setup_time = !setup_time;
    iteration_time = !iteration_time;
    per_step = List.rev !per_step;
    intermediates =
      List.sort compare (Hashtbl.fold (fun i v acc -> (i, v) :: acc) results []) }

let estimate ?(seed = 0) ~profile ~env (plan : Plan.t) =
  let setup = ref 0. and iter = ref 0. in
  List.iter
    (fun (s : Plan.step) ->
      let t =
        List.fold_left
          (fun acc k -> acc +. K.time_noisy profile ~seed:(seed + s.Plan.idx) k)
          0.
          (Primitive.to_kernels env s.Plan.prim)
      in
      match s.Plan.phase with
      | Plan.Setup -> setup := !setup +. t
      | Plan.Per_iteration -> iter := !iter +. t)
    plan.Plan.steps;
  (!setup, !iter)

let total_time ~setup ~iteration ~iterations =
  setup +. (float_of_int iterations *. iteration)
