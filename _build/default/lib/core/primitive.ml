module K = Granii_hw.Kernel_model

type t =
  | Gemm of { m : Dim.t; k : Dim.t; n : Dim.t }
  | Spmm of { k : Dim.t; weighted : bool }
  | Dense_sparse_mm of { m : Dim.t }
  | Sddmm_rank1
  | Diag_scale of { side : [ `Left | `Right ] }
  | Row_broadcast of { k : Dim.t }
  | Col_broadcast of { k : Dim.t }
  | Diag_combine
  | Sparse_add of { diag : bool }
  | Dense_add of { m : Dim.t; k : Dim.t }
  | Edge_score of { k : Dim.t }
  | Edge_softmax
  | Dense_map of { kind : Matrix_ir.nonlinear; m : Dim.t; k : Dim.t }
  | Degree of { binned : bool; power : degree_power }

and degree_power = Inv_sqrt | Inv

let name = function
  | Gemm _ -> "gemm"
  | Spmm { weighted = true; _ } -> "spmm_w"
  | Spmm { weighted = false; _ } -> "spmm_u"
  | Dense_sparse_mm _ -> "dspmm"
  | Sddmm_rank1 -> "sddmm_rank1"
  | Diag_scale _ -> "diag_scale"
  | Row_broadcast _ -> "row_broadcast"
  | Col_broadcast _ -> "col_broadcast"
  | Diag_combine -> "diag_combine"
  | Sparse_add _ -> "sparse_add"
  | Dense_add _ -> "dense_add"
  | Edge_score _ -> "edge_score"
  | Edge_softmax -> "edge_softmax"
  | Dense_map _ -> "dense_map"
  | Degree { binned = true; _ } -> "degree_binned"
  | Degree { binned = false; _ } -> "degree_rowptr"

let is_sparse_primitive = function
  | Spmm _ | Dense_sparse_mm _ | Sddmm_rank1 | Diag_scale _ | Diag_combine
  | Sparse_add _ | Edge_score _ | Edge_softmax | Degree _ ->
      true
  | Gemm _ | Row_broadcast _ | Col_broadcast _ | Dense_add _ | Dense_map _ -> false

let symbolic_flops scenario ~nnz_per_node prim =
  let d = Dim.eval scenario in
  let n = d Dim.N in
  let e = nnz_per_node *. n in
  match prim with
  | Gemm { m; k; n = cols } -> 2. *. d m *. d k *. d cols
  | Spmm { k; _ } -> 2. *. e *. d k
  | Dense_sparse_mm { m } -> 2. *. d m *. e
  | Sddmm_rank1 -> 2. *. e
  | Diag_scale _ -> e
  | Row_broadcast { k } | Col_broadcast { k } -> n *. d k
  | Diag_combine -> n
  | Sparse_add { diag } -> if diag then e +. n else 2. *. e
  | Dense_add { m; k } -> d m *. d k
  | Edge_score { k } -> (4. *. n *. d k) +. (3. *. e)
  | Edge_softmax -> 12. *. e
  | Dense_map { m; k; _ } -> d m *. d k
  | Degree _ -> e

let to_kernels (env : Dim.env) prim =
  let i = Dim.instantiate env in
  let nnz = env.Dim.nnz and n = env.Dim.n in
  let avg_deg = if n = 0 then 0. else float_of_int nnz /. float_of_int n in
  match prim with
  | Gemm { m; k; n = cols } -> [ K.Gemm { m = i m; k = i k; n = i cols } ]
  | Spmm { k; weighted } -> [ K.Spmm { rows = n; nnz; k = i k; weighted } ]
  | Dense_sparse_mm { m } -> [ K.Dense_sparse_mm { rows = i m; nnz; cols = n; k = n } ]
  | Sddmm_rank1 -> [ K.Sddmm { nnz; k = 1 } ]
  | Diag_scale _ -> [ K.Diag_scale_sparse { nnz } ]
  | Row_broadcast { k } -> [ K.Row_broadcast { n; k = i k } ]
  | Col_broadcast { k } -> [ K.Col_broadcast { n; k = i k } ]
  | Diag_combine -> [ K.Diag_combine { n } ]
  | Sparse_add { diag } ->
      if diag then [ K.Diag_scale_sparse { nnz } ]
      else [ K.Diag_scale_sparse { nnz = 2 * nnz } ]
  | Dense_add { m; k } -> [ K.Elementwise { n = i m; k = i k; flops_per_elt = 1. } ]
  | Edge_score { k } ->
      [ K.Gemm { m = n; k = i k; n = 1 };
        K.Gemm { m = n; k = i k; n = 1 };
        K.Sddmm { nnz; k = 1 } ]
  | Edge_softmax -> [ K.Edge_softmax { nnz } ]
  | Dense_map { m; k; kind } ->
      let flops_per_elt =
        match kind with
        | Matrix_ir.Relu -> 1.
        | Matrix_ir.Leaky_relu -> 2.
        | Matrix_ir.Sigmoid -> 10.
        | Matrix_ir.Log_softmax -> 12.
        | Matrix_ir.Edge_softmax -> 12.
      in
      [ K.Elementwise { n = i m; k = i k; flops_per_elt } ]
  | Degree { binned = true; _ } ->
      [ K.Degree_binning { n; nnz; avg_collisions = avg_deg } ]
  | Degree { binned = false; _ } -> [ K.Degree_rowptr { n } ]

let instantiated_dims (env : Dim.env) prim =
  let i d = float_of_int (Dim.instantiate env d) in
  let nnz = float_of_int env.Dim.nnz and n = float_of_int env.Dim.n in
  match prim with
  | Gemm { m; k; n = cols } -> (i m, i k, i cols)
  | Spmm { k; _ } -> (n, nnz, i k)
  | Dense_sparse_mm { m } -> (i m, nnz, n)
  | Sddmm_rank1 -> (n, nnz, 1.)
  | Diag_scale _ -> (n, nnz, 1.)
  | Row_broadcast { k } -> (n, 1., i k)
  | Col_broadcast { k } -> (n, 1., i k)
  | Diag_combine -> (n, 1., 1.)
  | Sparse_add { diag } -> (n, nnz, if diag then 1. else 2.)
  | Dense_add { m; k } -> (i m, 1., i k)
  | Edge_score { k } -> (n, nnz, i k)
  | Edge_softmax -> (n, nnz, 1.)
  | Dense_map { m; k; _ } -> (i m, 1., i k)
  | Degree _ -> (n, nnz, 1.)

let equal a b = compare a b = 0

let pp ppf prim =
  match prim with
  | Gemm { m; k; n } ->
      Format.fprintf ppf "GEMM[%a,%a,%a]" Dim.pp m Dim.pp k Dim.pp n
  | Spmm { k; weighted } ->
      Format.fprintf ppf "SpMM%s[%a]" (if weighted then "w" else "u") Dim.pp k
  | Dense_sparse_mm { m } -> Format.fprintf ppf "DSpMM[%a]" Dim.pp m
  | Sddmm_rank1 -> Format.fprintf ppf "SDDMM1"
  | Diag_scale { side = `Left } -> Format.fprintf ppf "DiagScaleL"
  | Diag_scale { side = `Right } -> Format.fprintf ppf "DiagScaleR"
  | Row_broadcast { k } -> Format.fprintf ppf "RowBcast[%a]" Dim.pp k
  | Col_broadcast { k } -> Format.fprintf ppf "ColBcast[%a]" Dim.pp k
  | Diag_combine -> Format.fprintf ppf "DiagComb"
  | Sparse_add { diag } -> Format.fprintf ppf "SpAdd%s" (if diag then "D" else "")
  | Dense_add { k; _ } -> Format.fprintf ppf "Add[%a]" Dim.pp k
  | Edge_score { k } -> Format.fprintf ppf "EdgeScore[%a]" Dim.pp k
  | Edge_softmax -> Format.fprintf ppf "EdgeSoftmax"
  | Dense_map { kind; _ } -> Format.fprintf ppf "Map[%a]" Matrix_ir.pp_nonlinear kind
  | Degree { binned; power } ->
      Format.fprintf ppf "Degree%s%s"
        (if binned then "Bin" else "Ptr")
        (match power with Inv_sqrt -> "" | Inv -> "^-1")
