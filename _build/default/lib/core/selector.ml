type choice = {
  candidate : Codegen.ccand;
  predicted_cost : float;
  selection_time : float;
  considered : int;
  used_cost_models : bool;
}

let scenario_of ~k_in ~k_out = if k_in >= k_out then Dim.Shrinking else Dim.Growing

let rank ~cost_model ~feats ~env ~iterations (compiled : Codegen.t) =
  let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
  let cands = Codegen.for_scenario compiled scenario in
  let scored =
    List.map
      (fun (c : Codegen.ccand) ->
        (c, Cost_model.predict_plan cost_model feats ~env ~iterations c.Codegen.plan))
      cands
  in
  List.sort (fun (_, a) (_, b) -> compare a b) scored

let select ~cost_model ~feats ~env ~iterations compiled =
  let result, selection_time =
    Granii_hw.Timer.measure (fun () ->
        let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
        match Codegen.for_scenario compiled scenario with
        | [] ->
            invalid_arg
              (Printf.sprintf "Selector.select: no candidate for scenario in %s"
                 compiled.Codegen.model_name)
        | [ only ] ->
            (* Fig. 7 fast path: the embedding-size guard already decides. *)
            ( only,
              Cost_model.predict_plan cost_model feats ~env ~iterations
                only.Codegen.plan,
              1,
              false )
        | several ->
            let scored =
              List.map
                (fun (c : Codegen.ccand) ->
                  ( c,
                    Cost_model.predict_plan cost_model feats ~env ~iterations
                      c.Codegen.plan ))
                several
            in
            let best, best_cost =
              List.fold_left
                (fun ((_, bc) as best) ((_, c) as cand) ->
                  if c < bc then cand else best)
                (List.hd scored) (List.tl scored)
            in
            (best, best_cost, List.length several, true))
  in
  let candidate, predicted_cost, considered, used_cost_models = result in
  { candidate; predicted_cost; selection_time; considered; used_cost_models }
