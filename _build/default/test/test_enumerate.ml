open Granii_core
open Test_util
module Ir = Matrix_ir

let d = Ir.diagonal "D"
let a = Ir.adjacency "A"
let h = Ir.features "H"
let w = Ir.weight "W"
let gcn = Ir.Mult [ Ir.Leaf d; Ir.Leaf a; Ir.Leaf d; Ir.Leaf h; Ir.Leaf w ]

let forest_of model =
  let low = Granii_mp.Lower.lower model in
  Enumerate.forest low.Granii_mp.Lower.ir

let test_simple_pair () =
  let trees = Enumerate.forest (Ir.Mult [ Ir.Leaf a; Ir.Leaf h ]) in
  check_int "single reduction" 1 (List.length trees);
  match Assoc_tree.primitives (List.hd trees) with
  | [ Primitive.Spmm { weighted = false; _ } ] -> ()
  | prims ->
      Alcotest.failf "expected one unweighted SpMM, got %d prims" (List.length prims)

let test_three_chain () =
  let trees = Enumerate.forest (Ir.Mult [ Ir.Leaf a; Ir.Leaf h; Ir.Leaf w ]) in
  check_int "two associations of a 3-chain" 2 (List.length trees)

let test_gcn_counts () =
  (* Our rule set enumerates 16 re-associations for GCN (the paper's rules
     report 12 — see DESIGN.md); pruning keeps 8, split 4/4 by scenario. *)
  let trees = Enumerate.forest gcn in
  check_int "gcn enumerated" 16 (List.length trees);
  let r = Prune.run trees in
  check_int "gcn pruned" 8 r.Prune.n_pruned;
  check_int "gcn promoted" 8 (List.length r.Prune.promoted);
  let by_scenario s =
    List.length
      (List.filter (fun c -> List.mem s c.Prune.scenarios) r.Prune.promoted)
  in
  check_int "4 shrinking candidates" 4 (by_scenario Dim.Shrinking);
  check_int "4 growing candidates" 4 (by_scenario Dim.Growing)

let test_gcn_has_both_paper_compositions () =
  let trees = Enumerate.forest gcn in
  let has_precompute =
    List.exists
      (fun t -> List.exists (( = ) Primitive.Sddmm_rank1) (Assoc_tree.primitives t))
      trees
  in
  let has_dynamic =
    List.exists
      (fun t ->
        List.for_all
          (function
            | Primitive.Sddmm_rank1 | Primitive.Diag_scale _ -> false
            | _ -> true)
          (Assoc_tree.primitives t))
      trees
  in
  check_true "precomputation-based composition present (Eq. 3)" has_precompute;
  check_true "dynamic-normalization composition present (Eq. 2)" has_dynamic

let test_gat_counts () =
  (* Matches the paper exactly: 2 compositions, 0 pruned. *)
  let trees = forest_of Granii_mp.Mp_models.gat in
  check_int "gat enumerated" 2 (List.length trees);
  let r = Prune.run trees in
  check_int "gat pruned" 0 r.Prune.n_pruned;
  List.iter
    (fun c ->
      check_int "gat candidates valid under both scenarios" 2
        (List.length c.Prune.scenarios))
    r.Prune.promoted

let test_gat_reuse_vs_recompute () =
  let trees = forest_of Granii_mp.Mp_models.gat in
  let gemms t =
    List.length
      (List.filter (function Primitive.Gemm _ -> true | _ -> false)
         (Assoc_tree.primitives t))
  in
  let counts = List.sort compare (List.map gemms trees) in
  Alcotest.(check (list int)) "one reuse (1 GEMM), one recompute (2 GEMMs)"
    [ 1; 2 ] counts

let test_gin_counts () =
  let trees = forest_of Granii_mp.Mp_models.gin in
  check_int "gin enumerated (paper: 8)" 7 (List.length trees);
  let has_preadd =
    List.exists
      (fun t ->
        List.exists
          (function Primitive.Sparse_add { diag = true } -> true | _ -> false)
          (Assoc_tree.primitives t))
      trees
  in
  check_true "pre-added (1+eps)I + A composition exposed" has_preadd

let test_all_models_enumerate =
  Alcotest.test_case "all models enumerate non-empty, well-typed forests" `Quick
    (fun () ->
      List.iter
        (fun m ->
          let trees = forest_of m in
          check_true (m.Granii_mp.Mp_ast.name ^ " forest non-empty")
            (List.length trees > 0);
          (* every tree computes an N x Kout dense result *)
          List.iter
            (fun t ->
              let r, c = Assoc_tree.node_shape t.Assoc_tree.root in
              check_true "root shape" (Dim.equal r Dim.N && Dim.equal c Dim.Kout))
            trees)
        Granii_mp.Mp_models.all)

let test_forest_dedup () =
  let trees = Enumerate.forest gcn in
  let keys = List.map Assoc_tree.tree_key trees in
  check_int "no duplicate trees" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_max_trees_guard () =
  check_true "tiny budget trips the guard"
    (try ignore (Enumerate.forest ~max_trees:1 gcn); false
     with Enumerate.Too_many_trees _ -> true)

let test_cse_shares_subtrees () =
  (* GAT's reuse candidate contains the theta GEMM twice in the tree but
     once in the CSE'd op list. *)
  let trees = forest_of Granii_mp.Mp_models.gat in
  let reuse =
    List.find
      (fun t ->
        List.length
          (List.filter (function Primitive.Gemm _ -> true | _ -> false)
             (Assoc_tree.primitives t))
        = 1)
      trees
  in
  let ops = Assoc_tree.ops reuse in
  let keys = List.map (fun (o : Assoc_tree.op) -> o.Assoc_tree.okey) ops in
  check_int "ops deduplicated by key" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_prune_never_removes_everything =
  qtest ~count:20 "pruning keeps at least one candidate per scenario"
    QCheck2.Gen.(int_range 0 5)
    (fun _ ->
      let r = Prune.run (Enumerate.forest gcn) in
      List.for_all
        (fun s -> List.exists (fun c -> List.mem s c.Prune.scenarios) r.Prune.promoted)
        Dim.all_scenarios)

let test_prune_signature () =
  let trees = Enumerate.forest gcn in
  let t = List.hd trees in
  let s = Prune.signature Dim.Shrinking ~nnz_per_node:16. t in
  check_int "one signature entry per primitive" (List.length (Assoc_tree.primitives t))
    (List.length s);
  check_true "sorted" (List.sort compare s = s)

let test_prune_subset_rule () =
  (* A tree plus an extra primitive must be dominated. *)
  let small = Enumerate.forest (Ir.Mult [ Ir.Leaf a; Ir.Leaf h ]) in
  let base = List.hd small in
  let extra =
    Assoc_tree.of_root
      (Assoc_tree.mk_op
         ~prim:(Primitive.Dense_map { kind = Ir.Relu; m = Dim.N; k = Dim.Kin })
         ~args:[ base.Assoc_tree.root ] ~rows:Dim.N ~cols:Dim.Kin
         ~attr:(Ir.Dense Ir.Data))
  in
  let r = Prune.run [ base; extra ] in
  check_int "superset pruned" 1 r.Prune.n_pruned;
  check_true "base survives"
    (List.exists
       (fun c -> Assoc_tree.tree_key c.Prune.tree = Assoc_tree.tree_key base)
       r.Prune.promoted)

let test_prune_duplicates () =
  let trees = Enumerate.forest gcn in
  let t = List.hd trees in
  let r = Prune.run [ t; t; t ] in
  check_int "duplicates collapse to one" 1 (List.length r.Prune.promoted)

let suite =
  [ Alcotest.test_case "pair reduction" `Quick test_simple_pair;
    Alcotest.test_case "3-chain" `Quick test_three_chain;
    Alcotest.test_case "GCN counts" `Quick test_gcn_counts;
    Alcotest.test_case "GCN paper compositions" `Quick test_gcn_has_both_paper_compositions;
    Alcotest.test_case "GAT counts (paper: 2/0)" `Quick test_gat_counts;
    Alcotest.test_case "GAT reuse vs recompute" `Quick test_gat_reuse_vs_recompute;
    Alcotest.test_case "GIN counts" `Quick test_gin_counts;
    test_all_models_enumerate;
    Alcotest.test_case "forest dedup" `Quick test_forest_dedup;
    Alcotest.test_case "max_trees guard" `Quick test_max_trees_guard;
    Alcotest.test_case "CSE shares subtrees" `Quick test_cse_shares_subtrees;
    test_prune_never_removes_everything;
    Alcotest.test_case "prune signature" `Quick test_prune_signature;
    Alcotest.test_case "prune subset rule" `Quick test_prune_subset_rule;
    Alcotest.test_case "prune duplicates" `Quick test_prune_duplicates ]
