open Granii_hw
open Test_util

let k_gemm = Kernel_model.Gemm { m = 1024; k = 256; n = 256 }
let k_spmm = Kernel_model.Spmm { rows = 1024; nnz = 100_000; k = 256; weighted = true }

let test_flops () =
  check_float "gemm flops" (2. *. 1024. *. 256. *. 256.) (Kernel_model.flops k_gemm);
  check_float "spmm flops" (2. *. 100_000. *. 256.) (Kernel_model.flops k_spmm);
  check_float "rowbcast flops" (1024. *. 8.)
    (Kernel_model.flops (Kernel_model.Row_broadcast { n = 1024; k = 8 }))

let test_positive_times () =
  List.iter
    (fun profile ->
      List.iter
        (fun kernel ->
          check_true "time is positive and finite"
            (let t = Kernel_model.time profile kernel in
             t > 0. && Float.is_finite t))
        [ k_gemm;
          k_spmm;
          Kernel_model.Sddmm { nnz = 5000; k = 16 };
          Kernel_model.Degree_binning { n = 100; nnz = 5000; avg_collisions = 50. };
          Kernel_model.Edge_softmax { nnz = 5000 };
          Kernel_model.Elementwise { n = 10; k = 10; flops_per_elt = 1. } ])
    Hw_profile.all

let test_dense_gets_cheaper_with_better_hw () =
  let t p = Kernel_model.time p k_gemm in
  check_true "cpu > a100 > h100 for dense"
    (t Hw_profile.cpu > t Hw_profile.a100 && t Hw_profile.a100 > t Hw_profile.h100)

let test_dense_sparse_ratio_shifts () =
  (* The Fig. 2 phenomenon: dense work shrinks relative to sparse work as
     hardware improves from CPU to H100. Use kernels large enough that GPU
     launch overhead is negligible. *)
  let big_gemm = Kernel_model.Gemm { m = 4096; k = 512; n = 512 } in
  let big_spmm = Kernel_model.Spmm { rows = 4096; nnz = 400_000; k = 512; weighted = true } in
  let ratio p = Kernel_model.time p big_gemm /. Kernel_model.time p big_spmm in
  check_true "dense/sparse ratio decreases with better hardware"
    (ratio Hw_profile.cpu > ratio Hw_profile.a100
    && ratio Hw_profile.a100 > ratio Hw_profile.h100)

let test_binning_quirk () =
  (* WiseGraph's binned degree kernel must be painful on the A100 for dense
     graphs and essentially free on the CPU (Sec. VI-C1). *)
  let dense_binning =
    Kernel_model.Degree_binning { n = 4096; nnz = 800_000; avg_collisions = 200. }
  in
  let cheap = Kernel_model.Degree_rowptr { n = 4096 } in
  let a100_pain =
    Kernel_model.time Hw_profile.a100 dense_binning
    /. Kernel_model.time Hw_profile.a100 cheap
  in
  let h100_pain =
    Kernel_model.time Hw_profile.h100 dense_binning
    /. Kernel_model.time Hw_profile.h100 cheap
  in
  check_true "binning much worse than rowptr on A100" (a100_pain > 50.);
  check_true "A100 suffers more than H100" (a100_pain > 4. *. h100_pain)

let test_monotone_in_size =
  qtest "kernel time monotone in problem size"
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 64))
    (fun (m, k) ->
      let small = Kernel_model.Gemm { m; k; n = k } in
      let big = Kernel_model.Gemm { m = 2 * m; k; n = k } in
      Kernel_model.time Hw_profile.a100 big >= Kernel_model.time Hw_profile.a100 small)

let test_noise_bounded =
  qtest "noisy time stays within the profile's noise band"
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let base = Kernel_model.time Hw_profile.a100 k_spmm in
      let noisy = Kernel_model.time_noisy Hw_profile.a100 ~seed k_spmm in
      let band = Hw_profile.a100.Hw_profile.noise +. 1e-9 in
      Float.abs ((noisy /. base) -. 1.) <= band)

let test_noise_deterministic () =
  check_float "same seed, same jitter"
    (Kernel_model.time_noisy Hw_profile.h100 ~seed:5 k_gemm)
    (Kernel_model.time_noisy Hw_profile.h100 ~seed:5 k_gemm)

let test_profile_lookup () =
  check_true "find is case-insensitive"
    (String.equal (Hw_profile.find "h100").Hw_profile.name "H100");
  Alcotest.check_raises "unknown profile" Not_found (fun () ->
      ignore (Hw_profile.find "tpu"))

let test_timer () =
  let x, t = Timer.measure (fun () -> 21 * 2) in
  check_int "result passed through" 42 x;
  check_true "non-negative time" (t >= 0.);
  let avg = Timer.measure_n ~n:3 (fun () -> ignore (Array.make 100 0)) in
  check_true "average non-negative" (avg >= 0.)

let suite =
  [ Alcotest.test_case "kernel flops" `Quick test_flops;
    Alcotest.test_case "positive times" `Quick test_positive_times;
    Alcotest.test_case "dense hw ordering" `Quick test_dense_gets_cheaper_with_better_hw;
    Alcotest.test_case "dense/sparse ratio shift (Fig 2)" `Quick test_dense_sparse_ratio_shifts;
    Alcotest.test_case "binning quirk (Sec VI-C1)" `Quick test_binning_quirk;
    test_monotone_in_size;
    test_noise_bounded;
    Alcotest.test_case "noise determinism" `Quick test_noise_deterministic;
    Alcotest.test_case "profile lookup" `Quick test_profile_lookup;
    Alcotest.test_case "timer" `Quick test_timer ]
