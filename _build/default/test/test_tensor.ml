open Granii_tensor
open Test_util

let test_vector_basics () =
  let v = Vector.init 4 float_of_int in
  check_float "sum" 6. (Vector.sum v);
  check_float "mean" 1.5 (Vector.mean v);
  check_float "max" 3. (Vector.max v);
  check_float "min" 0. (Vector.min v);
  check_float "dot" 14. (Vector.dot v v);
  check_float "norm2" (sqrt 14.) (Vector.norm2 v)

let test_vector_inv_sqrt () =
  let v = [| 4.; 0.; 1.; 16. |] in
  let r = Vector.inv_sqrt v in
  check_float "4 -> 1/2" 0.5 r.(0);
  check_float "0 -> 0 (pseudo-inverse)" 0. r.(1);
  check_float "1 -> 1" 1. r.(2);
  check_float "16 -> 1/4" 0.25 r.(3)

let test_vector_variance () =
  check_float "constant vector has zero variance" 0. (Vector.variance (Vector.create 5 3.));
  check_float "variance of [0;2]" 1. (Vector.variance [| 0.; 2. |])

let test_vector_mismatch () =
  Alcotest.check_raises "map2 rejects mismatched dims"
    (Invalid_argument "Vector.map2: dimension mismatch") (fun () ->
      ignore (Vector.map2 ( +. ) [| 1. |] [| 1.; 2. |]))

let test_dense_construction () =
  let m = Dense.init 2 3 (fun i j -> float_of_int ((i * 3) + j)) in
  check_int "rows" 2 (fst (Dense.dims m));
  check_int "cols" 3 (snd (Dense.dims m));
  check_float "get (1,2)" 5. (Dense.get m 1 2);
  let m' = Dense.of_arrays (Dense.to_arrays m) in
  check_true "roundtrip through arrays" (Dense.equal_approx m m')

let test_dense_matmul_identity () =
  let m = Dense.random ~seed:3 5 5 in
  check_true "m * I = m" (Dense.equal_approx m (Dense.matmul m (Dense.identity 5)));
  check_true "I * m = m" (Dense.equal_approx m (Dense.matmul (Dense.identity 5) m))

let test_dense_matmul_known () =
  let a = Dense.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Dense.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Dense.matmul a b in
  check_float "c00" 19. (Dense.get c 0 0);
  check_float "c01" 22. (Dense.get c 0 1);
  check_float "c10" 43. (Dense.get c 1 0);
  check_float "c11" 50. (Dense.get c 1 1)

let test_dense_matmul_mismatch () =
  Alcotest.check_raises "inner dim mismatch"
    (Invalid_argument "Dense.matmul: inner dimension mismatch") (fun () ->
      ignore (Dense.matmul (Dense.zeros 2 3) (Dense.zeros 2 3)))

let test_dense_broadcasts () =
  let m = Dense.ones 3 2 in
  let d = [| 1.; 2.; 3. |] in
  let r = Dense.row_broadcast d m in
  check_float "row 2 scaled" 3. (Dense.get r 2 0);
  let c = Dense.col_broadcast m [| 10.; 20. |] in
  check_float "col 1 scaled" 20. (Dense.get c 0 1)

let test_dense_softmax () =
  let m = Dense.of_arrays [| [| 0.; 0. |]; [| 1000.; 1000. |] |] in
  let s = Dense.softmax_rows m in
  check_float "uniform row" 0.5 (Dense.get s 0 0);
  check_float "large values stay stable" 0.5 (Dense.get s 1 1);
  let rs = Dense.row_sums s in
  check_float ~eps:1e-12 "softmax rows sum to one" 1. rs.(0)

let test_dense_log_softmax_consistent () =
  let m = Dense.random ~seed:8 4 5 in
  let a = Dense.softmax_rows m and b = Dense.map exp (Dense.log_softmax_rows m) in
  check_true "exp(log_softmax) = softmax" (Dense.equal_approx ~eps:1e-9 a b)

let test_dense_activations () =
  let m = Dense.of_arrays [| [| -1.; 2. |] |] in
  check_float "relu clamps" 0. (Dense.get (Dense.relu m) 0 0);
  check_float "relu keeps" 2. (Dense.get (Dense.relu m) 0 1);
  check_float "leaky default slope" (-0.2) (Dense.get (Dense.leaky_relu m) 0 0);
  check_float ~eps:1e-12 "sigmoid(0-ish)" (1. /. (1. +. exp 1.))
    (Dense.get (Dense.sigmoid m) 0 0)

let test_dense_argmax () =
  let m = Dense.of_arrays [| [| 1.; 3.; 2. |]; [| 9.; 0.; 0. |] |] in
  Alcotest.(check (array int)) "argmax per row" [| 1; 0 |] (Dense.argmax_rows m)

let test_glorot_bounds () =
  let m = Dense.glorot ~seed:5 30 20 in
  let bound = sqrt (6. /. 50.) +. 1e-12 in
  check_true "within glorot bound"
    (Array.for_all (fun x -> Float.abs x <= bound) m.Dense.data)

let test_semiring_laws =
  qtest "plus_times semiring laws on floats"
    QCheck2.Gen.(triple (float_range (-10.) 10.) (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (a, b, c) ->
      let sr = Semiring.plus_times in
      let ( +! ) = sr.Semiring.add and ( *! ) = sr.Semiring.mul in
      Float.abs ((a +! b) -. (b +! a)) < 1e-9
      && Float.abs ((a *! (b +! c)) -. ((a *! b) +. (a *! c))) < 1e-6
      && a +! sr.Semiring.zero = a)

let test_semiring_tropical () =
  let sr = Semiring.max_plus in
  check_float "max_plus add" 3. (sr.Semiring.add 3. 1.);
  check_float "max_plus mul" 4. (sr.Semiring.mul 3. 1.);
  check_float "zero is neg_infinity absorbed" 5. (sr.Semiring.add neg_infinity 5.);
  check_true "plus_rhs ignores lhs" (Semiring.plus_rhs.Semiring.mul 99. 2. = 2.)

let test_prng_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 50 do
    check_float "same stream" (Prng.float a) (Prng.float b)
  done;
  let c = Prng.create 43 in
  check_true "different seeds diverge" (Prng.float a <> Prng.float c)

let test_prng_ranges =
  qtest "Prng.int stays in range"
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 1 50))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let test_prng_sample_without_replacement () =
  let rng = Prng.create 7 in
  let s = Prng.sample_without_replacement rng 10 100 in
  check_int "ten elements" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  let distinct = Array.length sorted = List.length (List.sort_uniq compare (Array.to_list sorted)) in
  check_true "all distinct" distinct;
  let all = Prng.sample_without_replacement rng 200 20 in
  check_int "k >= n returns all" 20 (Array.length all)

let test_prng_uniformity () =
  let rng = Prng.create 11 in
  let acc = ref 0. in
  let n = 20_000 in
  for _ = 1 to n do
    acc := !acc +. Prng.float rng
  done;
  check_true "mean near 0.5" (Float.abs ((!acc /. float_of_int n) -. 0.5) < 0.02)

let suite =
  [ Alcotest.test_case "vector basics" `Quick test_vector_basics;
    Alcotest.test_case "vector inv_sqrt" `Quick test_vector_inv_sqrt;
    Alcotest.test_case "vector variance" `Quick test_vector_variance;
    Alcotest.test_case "vector mismatch" `Quick test_vector_mismatch;
    Alcotest.test_case "dense construction" `Quick test_dense_construction;
    Alcotest.test_case "matmul identity" `Quick test_dense_matmul_identity;
    Alcotest.test_case "matmul known values" `Quick test_dense_matmul_known;
    Alcotest.test_case "matmul mismatch" `Quick test_dense_matmul_mismatch;
    Alcotest.test_case "row/col broadcast" `Quick test_dense_broadcasts;
    Alcotest.test_case "softmax stability" `Quick test_dense_softmax;
    Alcotest.test_case "log_softmax consistency" `Quick test_dense_log_softmax_consistent;
    Alcotest.test_case "activations" `Quick test_dense_activations;
    Alcotest.test_case "argmax rows" `Quick test_dense_argmax;
    Alcotest.test_case "glorot bounds" `Quick test_glorot_bounds;
    test_semiring_laws;
    Alcotest.test_case "tropical semirings" `Quick test_semiring_tropical;
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    test_prng_ranges;
    Alcotest.test_case "sample without replacement" `Quick test_prng_sample_without_replacement;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity ]
