(* Shared helpers for the test suite. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_true msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.equal (String.sub haystack i nn) needle || scan (i + 1)) in
  nn = 0 || scan 0

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* A small random CSR matrix generator for property tests: dimensions up to
   12x12, density ~0.3, values in [-2, 2]. *)
let csr_gen =
  let open QCheck2.Gen in
  let* rows = int_range 1 12 in
  let* cols = int_range 1 12 in
  let* density = float_range 0.05 0.5 in
  let* seed = int_range 0 10_000 in
  let rng = Granii_tensor.Prng.create seed in
  let entries = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Granii_tensor.Prng.bool rng density then
        entries := (i, j, Granii_tensor.Prng.uniform rng (-2.) 2.) :: !entries
    done
  done;
  return
    (Granii_sparse.Csr.of_coo
       (Granii_sparse.Coo.make ~n_rows:rows ~n_cols:cols (Array.of_list !entries)))

let dense_gen ~rows ~cols =
  let open QCheck2.Gen in
  let* seed = int_range 0 10_000 in
  return (Granii_tensor.Dense.random ~seed ~scale:2. rows cols)

(* Random small connected-ish graph. *)
let graph_gen =
  let open QCheck2.Gen in
  let* n = int_range 4 40 in
  let* avg = float_range 1.5 6. in
  let* seed = int_range 0 10_000 in
  return (Granii_graph.Generators.erdos_renyi ~seed ~n ~avg_degree:avg ())
