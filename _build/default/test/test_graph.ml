open Granii_graph
open Test_util

let test_of_edges () =
  let g = Graph.of_edges ~name:"tri" ~n:3 [ (0, 1); (1, 2); (2, 0); (1, 1) ] in
  check_int "self loop dropped, undirected doubled" 6 (Graph.n_edges g);
  check_true "symmetric" (Graph.is_symmetric g);
  check_float "avg degree" 2. (Graph.avg_degree g)

let test_self_loops_and_norm () =
  let g = Graph.of_edges ~name:"pair" ~n:2 [ (0, 1) ] in
  let a = Graph.with_self_loops g in
  check_int "n + 2e entries" 4 (Granii_sparse.Csr.nnz a);
  let d = Graph.degrees_tilde g in
  check_float "degree includes self loop" 2. d.(0);
  let norm = Graph.norm_inv_sqrt g in
  check_float "norm is deg^-1/2" (1. /. sqrt 2.) norm.(0)

let test_generator_er () =
  let g = Generators.erdos_renyi ~seed:1 ~n:500 ~avg_degree:8. () in
  check_int "node count" 500 (Graph.n_nodes g);
  check_true "average degree in the right ballpark"
    (Graph.avg_degree g > 4. && Graph.avg_degree g < 12.);
  check_true "symmetric" (Graph.is_symmetric g)

let test_generator_determinism () =
  let a = Generators.rmat ~seed:9 ~scale:8 ~edge_factor:8 () in
  let b = Generators.rmat ~seed:9 ~scale:8 ~edge_factor:8 () in
  check_int "same seed, same graph" (Graph.n_edges a) (Graph.n_edges b);
  check_true "structures equal"
    (Granii_sparse.Csr.equal_structure a.Graph.adj b.Graph.adj)

let test_generator_ba_skew () =
  let g = Generators.barabasi_albert ~seed:2 ~n:400 ~m:3 () in
  check_true "max degree far above average (heavy tail)"
    (float_of_int (Graph.max_degree g) > 4. *. Graph.avg_degree g)

let test_generator_grid () =
  let g = Generators.grid2d ~seed:1 ~diagonal_fraction:0. ~rows:5 ~cols:4 () in
  check_int "5x4 grid nodes" 20 (Graph.n_nodes g);
  (* 4-neighbor lattice: horizontal 5*3, vertical 4*4 undirected -> x2 *)
  check_int "lattice edges" (2 * ((5 * 3) + (4 * 4))) (Graph.n_edges g);
  check_true "bounded degree" (Graph.max_degree g <= 4)

let test_generator_mycielskian () =
  (* M2 = K2, M3 = C5 (5 nodes, 5 edges), M4 = Groetzsch (11 nodes, 20 edges) *)
  let m3 = Generators.mycielskian ~levels:3 () in
  check_int "M3 nodes" 5 (Graph.n_nodes m3);
  check_int "M3 edges" 10 (Graph.n_edges m3);
  let m4 = Generators.mycielskian ~levels:4 () in
  check_int "M4 nodes" 11 (Graph.n_nodes m4);
  check_int "M4 edges" 40 (Graph.n_edges m4);
  let m6 = Generators.mycielskian ~levels:6 () in
  check_true "density grows with level" (Graph.avg_degree m6 > Graph.avg_degree m4)

let test_generator_specials () =
  let s = Generators.star ~n:10 in
  check_int "star max degree" 9 (Graph.max_degree s);
  let r = Generators.ring ~n:10 in
  check_true "ring is 2-regular" (Graph.max_degree r = 2 && Graph.avg_degree r = 2.);
  let k = Generators.complete ~n:6 in
  check_int "complete graph edges" 30 (Graph.n_edges k)

let test_datasets_catalog () =
  check_int "six datasets" 6 (List.length Datasets.all);
  let rd = Datasets.find "rd" in
  check_true "case-insensitive lookup" (String.equal rd.Datasets.key "RD");
  let g = Datasets.load rd in
  check_true "reddit stand-in is dense-ish" (Graph.avg_degree g > 50.);
  let bl = Datasets.load (Datasets.find "BL") in
  check_true "road stand-in is sparse" (Graph.avg_degree bl < 5.);
  let mc = Datasets.load (Datasets.find "MC") in
  check_true "mycielskian stand-in is densest by density"
    (Graph.density mc > Graph.density bl)

let test_training_pool_disjoint () =
  let pool = Datasets.training_pool () in
  check_true "pool is reasonably sized" (List.length pool >= 10);
  let eval_names = List.map (fun d -> (Datasets.load d).Graph.name) Datasets.all in
  List.iter
    (fun g ->
      check_true "pool graph not in eval set"
        (not (List.mem g.Graph.name eval_names)))
    pool

let test_sampling_fanout =
  qtest "sampling caps in-degree at fanout" graph_gen (fun g ->
      let fanout = 2 in
      let s = Sampling.neighborhood ~seed:3 ~fanout g in
      Array.for_all (fun d -> d <= fanout) (Granii_sparse.Csr.row_degrees s.Graph.adj)
      && Graph.n_nodes s = Graph.n_nodes g)

let test_sampling_preserves_small_rows =
  qtest "rows under the fanout are untouched" graph_gen (fun g ->
      let s = Sampling.neighborhood ~seed:5 ~fanout:1000 g in
      Granii_sparse.Csr.equal_structure s.Graph.adj g.Graph.adj)

let test_sampling_determinism () =
  let g = Generators.erdos_renyi ~seed:4 ~n:100 ~avg_degree:10. () in
  let a = Sampling.neighborhood ~seed:7 ~fanout:3 g in
  let b = Sampling.neighborhood ~seed:7 ~fanout:3 g in
  check_true "same seed same sample"
    (Granii_sparse.Csr.equal_structure a.Graph.adj b.Graph.adj);
  let c = Sampling.neighborhood ~seed:8 ~fanout:3 g in
  check_true "different seed differs"
    (not (Granii_sparse.Csr.equal_structure a.Graph.adj c.Graph.adj))

let test_induced_subgraph () =
  let g = Graph.of_edges ~name:"p4" ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let s = Sampling.induced_subgraph g [| 1; 2 |] in
  check_int "two nodes" 2 (Graph.n_nodes s);
  check_int "one undirected edge" 2 (Graph.n_edges s);
  Alcotest.check_raises "duplicate ids rejected"
    (Invalid_argument "Sampling.induced_subgraph: duplicate node id") (fun () ->
      ignore (Sampling.induced_subgraph g [| 1; 1 |]))

let test_features_star () =
  let f = Graph_features.extract (Generators.star ~n:100) in
  check_float "n" 100. f.Graph_features.n_nodes;
  check_true "high gini for star" (f.Graph_features.degree_gini > 0.45);
  check_true "high cv for star" (f.Graph_features.degree_cv > 3.)

let test_features_ring () =
  let f = Graph_features.extract (Generators.ring ~n:64) in
  check_float "regular graph: zero cv" 0. f.Graph_features.degree_cv;
  check_float "regular graph: zero gini" 0. f.Graph_features.degree_gini;
  check_float "avg degree 2" 2. f.Graph_features.avg_degree

let test_features_encoding =
  qtest "feature vector is finite and fixed-width" graph_gen (fun g ->
      let arr = Graph_features.to_array (Graph_features.extract g) in
      Array.length arr = Array.length Graph_features.names
      && Array.for_all (fun x -> Float.is_finite x) arr)

let suite =
  [ Alcotest.test_case "of_edges" `Quick test_of_edges;
    Alcotest.test_case "self loops and norm" `Quick test_self_loops_and_norm;
    Alcotest.test_case "erdos-renyi" `Quick test_generator_er;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Alcotest.test_case "barabasi-albert skew" `Quick test_generator_ba_skew;
    Alcotest.test_case "grid generator" `Quick test_generator_grid;
    Alcotest.test_case "mycielskian construction" `Quick test_generator_mycielskian;
    Alcotest.test_case "special graphs" `Quick test_generator_specials;
    Alcotest.test_case "dataset catalog" `Quick test_datasets_catalog;
    Alcotest.test_case "training pool disjoint" `Quick test_training_pool_disjoint;
    test_sampling_fanout;
    test_sampling_preserves_small_rows;
    Alcotest.test_case "sampling determinism" `Quick test_sampling_determinism;
    Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
    Alcotest.test_case "features: star" `Quick test_features_star;
    Alcotest.test_case "features: ring" `Quick test_features_ring;
    test_features_encoding ]
