open Granii_sparse
open Granii_tensor
open Test_util

let small_csr () =
  Csr.of_coo
    (Coo.make ~n_rows:3 ~n_cols:3 [| (0, 1, 2.); (1, 0, 3.); (1, 2, 1.); (2, 2, 5.) |])

let test_coo_dedup () =
  let coo = Coo.make ~n_rows:2 ~n_cols:2 [| (0, 0, 1.); (0, 0, 2.); (1, 1, 3.) |] in
  check_int "duplicates summed" 2 (Coo.nnz coo);
  let d = Coo.to_dense coo in
  check_float "summed value" 3. (Granii_tensor.Dense.get d 0 0)

let test_coo_bounds () =
  Alcotest.check_raises "out of bounds rejected"
    (Invalid_argument "Coo.make: entry (2, 0) out of bounds for 2x2") (fun () ->
      ignore (Coo.make ~n_rows:2 ~n_cols:2 [| (2, 0, 1.) |]))

let test_coo_symmetrize () =
  let coo = Coo.make ~n_rows:3 ~n_cols:3 [| (0, 1, 4.); (2, 2, 1.) |] in
  let s = Coo.symmetrize coo in
  check_int "adds reverse edge" 3 (Coo.nnz s);
  let d = Coo.to_dense s in
  check_float "reverse value" 4. (Granii_tensor.Dense.get d 1 0);
  let s2 = Coo.symmetrize s in
  check_int "symmetrize is idempotent" (Coo.nnz s) (Coo.nnz s2)

let test_csr_structure () =
  let m = small_csr () in
  check_int "nnz" 4 (Csr.nnz m);
  check_float "get stored" 3. (Csr.get m 1 0);
  check_float "get missing" 0. (Csr.get m 0 0);
  Alcotest.(check (array int)) "row degrees" [| 1; 2; 1 |] (Csr.row_degrees m);
  Alcotest.(check (array int)) "col degrees" [| 1; 1; 2 |] (Csr.col_degrees m)

let test_csr_transpose_involution =
  qtest "transpose . transpose = id" csr_gen (fun m ->
      Csr.equal_approx m (Csr.transpose (Csr.transpose m)))

let test_csr_transpose_dense =
  qtest "transpose agrees with dense transpose" csr_gen (fun m ->
      Granii_tensor.Dense.equal_approx
        (Csr.to_dense (Csr.transpose m))
        (Granii_tensor.Dense.transpose (Csr.to_dense m)))

let test_csr_of_dense_roundtrip =
  qtest "of_dense . to_dense = id" csr_gen (fun m ->
      Csr.equal_approx m (Csr.of_dense (Csr.to_dense m)))

let test_csr_unweighted () =
  let m = Csr.drop_values (small_csr ()) in
  check_true "unweighted" (not (Csr.is_weighted m));
  check_float "values read as 1" 1. (Csr.value m 0);
  check_float "get missing still 0" 0. (Csr.get m 0 0)

let test_csr_validation () =
  Alcotest.check_raises "row_ptr must be monotone"
    (Invalid_argument "Csr.make: row_ptr must be monotone") (fun () ->
      ignore
        (Csr.make ~n_rows:2 ~n_cols:2 ~row_ptr:[| 0; 2; 1 |] ~col_idx:[| 0 |]
           ~values:None))

let test_spmm_reference =
  qtest ~count:200 "SpMM agrees with dense reference" csr_gen (fun m ->
      let k = 5 in
      let b = Granii_tensor.Dense.random ~seed:(Csr.nnz m) m.Csr.n_cols k in
      let via_sparse = Spmm.run m b in
      let via_dense = Granii_tensor.Dense.matmul (Csr.to_dense m) b in
      Granii_tensor.Dense.equal_approx ~eps:1e-9 via_sparse via_dense)

let test_spmm_unweighted_reference =
  qtest "unweighted SpMM treats entries as 1" csr_gen (fun m ->
      let m = Csr.drop_values m in
      let b = Granii_tensor.Dense.random ~seed:1 m.Csr.n_cols 3 in
      Granii_tensor.Dense.equal_approx (Spmm.run m b)
        (Granii_tensor.Dense.matmul (Csr.to_dense m) b))

let test_spmm_transposed_reference =
  qtest "dense-times-sparse agrees with dense reference" csr_gen (fun m ->
      let b = Granii_tensor.Dense.random ~seed:2 4 m.Csr.n_rows in
      Granii_tensor.Dense.equal_approx (Spmm.run_transposed b m)
        (Granii_tensor.Dense.matmul b (Csr.to_dense m)))

let test_spmm_semiring_max_plus () =
  (* adjacency of a path 0 -> 1 with weight 2; max_plus SpMM on a vector of
     node potentials computes the best relaxed distance *)
  let m = Csr.of_coo (Coo.make ~n_rows:2 ~n_cols:2 [| (0, 1, 2.) |]) in
  let b = Granii_tensor.Dense.of_arrays [| [| 0. |]; [| 10. |] |] in
  let r = Spmm.run ~semiring:Semiring.max_plus m b in
  check_float "max_plus aggregation" 12. (Granii_tensor.Dense.get r 0 0);
  check_float "empty row gives semiring zero" neg_infinity (Granii_tensor.Dense.get r 1 0)

let test_spmv () =
  let m = small_csr () in
  let v = Spmm.spmv m [| 1.; 1.; 1. |] in
  check_float "row 1 sum" 4. v.(1)

let test_sddmm_reference =
  qtest ~count:200 "SDDMM agrees with masked dense product" csr_gen (fun mask ->
      let k = 4 in
      let a = Granii_tensor.Dense.random ~seed:3 mask.Csr.n_rows k in
      let b = Granii_tensor.Dense.random ~seed:4 k mask.Csr.n_cols in
      let r = Sddmm.run mask a b in
      let full = Granii_tensor.Dense.matmul a b in
      let ok = ref true in
      Csr.iter
        (fun i j v ->
          let expected = Csr.get mask i j *. Granii_tensor.Dense.get full i j in
          if Float.abs (v -. expected) > 1e-9 then ok := false)
        r;
      !ok && Csr.equal_structure r mask)

let test_sddmm_rank1_matches_general =
  qtest "rank-1 SDDMM = general SDDMM with vector operands" csr_gen (fun mask ->
      let n = mask.Csr.n_rows and c = mask.Csr.n_cols in
      let dl = Array.init n (fun i -> float_of_int (i + 1)) in
      let dr = Array.init c (fun j -> 1. /. float_of_int (j + 1)) in
      let a = Granii_tensor.Dense.init n 1 (fun i _ -> dl.(i)) in
      let b = Granii_tensor.Dense.init 1 c (fun _ j -> dr.(j)) in
      Csr.equal_approx (Sddmm.rank1 mask dl dr) (Sddmm.run mask a b))

let test_dot_rows_matches_run =
  qtest "dot_rows = run with transposed second operand" csr_gen (fun mask ->
      let k = 3 in
      let x = Granii_tensor.Dense.random ~seed:5 mask.Csr.n_rows k in
      let y = Granii_tensor.Dense.random ~seed:6 mask.Csr.n_cols k in
      Csr.equal_approx (Sddmm.dot_rows mask x y)
        (Sddmm.run mask x (Granii_tensor.Dense.transpose y)))

let test_scale_rows_cols =
  qtest "bilateral scaling = rows then cols" csr_gen (fun m ->
      let dl = Array.init m.Csr.n_rows (fun i -> float_of_int i +. 0.5) in
      let dr = Array.init m.Csr.n_cols (fun j -> 2. -. (0.1 *. float_of_int j)) in
      Csr.equal_approx
        (Sparse_ops.scale_bilateral dl m dr)
        (Sparse_ops.scale_cols (Sparse_ops.scale_rows dl m) dr))

let test_sparse_add () =
  let a = Csr.of_coo (Coo.make ~n_rows:2 ~n_cols:2 [| (0, 0, 1.) |]) in
  let b = Csr.of_coo (Coo.make ~n_rows:2 ~n_cols:2 [| (0, 0, 2.); (1, 1, 4.) |]) in
  let s = Sparse_ops.add a b in
  check_int "union structure" 2 (Csr.nnz s);
  check_float "overlapping summed" 3. (Csr.get s 0 0);
  check_float "disjoint kept" 4. (Csr.get s 1 1)

let test_row_softmax () =
  let m =
    Csr.of_coo (Coo.make ~n_rows:2 ~n_cols:3 [| (0, 0, 1.); (0, 2, 1.); (1, 1, 100.) |])
  in
  let s = Sparse_ops.row_softmax m in
  check_float "uniform over equal scores" 0.5 (Csr.get s 0 0);
  check_float "single entry row is 1" 1. (Csr.get s 1 1);
  let sums = Sparse_ops.row_sums s in
  check_float ~eps:1e-12 "rows sum to 1" 1. sums.(0)

let test_csc_roundtrip =
  qtest "CSC <-> CSR roundtrip" csr_gen (fun m ->
      Csr.equal_approx m (Csc.to_csr (Csc.of_csr m)))

let test_csc_dense_agree =
  qtest "CSC to_dense = CSR to_dense" csr_gen (fun m ->
      Granii_tensor.Dense.equal_approx
        (Csc.to_dense (Csc.of_csr m))
        (Csr.to_dense m))

let test_csc_spmm_agree =
  qtest ~count:150 "column-driven SpMM = row-driven SpMM" csr_gen (fun m ->
      let b = Granii_tensor.Dense.random ~seed:(Csr.nnz m + 1) m.Csr.n_cols 4 in
      Granii_tensor.Dense.equal_approx ~eps:1e-9
        (Csc.spmm (Csc.of_csr m) b)
        (Spmm.run m b))

let test_csc_get =
  qtest "CSC get = CSR get" csr_gen (fun m ->
      let c = Csc.of_csr m in
      let ok = ref true in
      for i = 0 to m.Csr.n_rows - 1 do
        for j = 0 to m.Csr.n_cols - 1 do
          if Float.abs (Csc.get c i j -. Csr.get m i j) > 1e-12 then ok := false
        done
      done;
      !ok && Csc.nnz c = Csr.nnz m)

let test_degrees_agree () =
  let m = Csr.drop_values (small_csr ()) in
  check_true "binned = rowptr degree values"
    (Vector.equal_approx (Sparse_ops.binned_degrees m) (Sparse_ops.row_sums m))

let suite =
  [ Alcotest.test_case "coo dedup" `Quick test_coo_dedup;
    Alcotest.test_case "coo bounds" `Quick test_coo_bounds;
    Alcotest.test_case "coo symmetrize" `Quick test_coo_symmetrize;
    Alcotest.test_case "csr structure" `Quick test_csr_structure;
    test_csr_transpose_involution;
    test_csr_transpose_dense;
    test_csr_of_dense_roundtrip;
    Alcotest.test_case "csr unweighted" `Quick test_csr_unweighted;
    Alcotest.test_case "csr validation" `Quick test_csr_validation;
    test_spmm_reference;
    test_spmm_unweighted_reference;
    test_spmm_transposed_reference;
    Alcotest.test_case "spmm max_plus semiring" `Quick test_spmm_semiring_max_plus;
    Alcotest.test_case "spmv" `Quick test_spmv;
    test_sddmm_reference;
    test_sddmm_rank1_matches_general;
    test_dot_rows_matches_run;
    test_scale_rows_cols;
    Alcotest.test_case "sparse add" `Quick test_sparse_add;
    Alcotest.test_case "row softmax" `Quick test_row_softmax;
    test_csc_roundtrip;
    test_csc_dense_agree;
    test_csc_spmm_agree;
    test_csc_get;
    Alcotest.test_case "degree kernels agree" `Quick test_degrees_agree ]
