open Granii_core
open Test_util
module Ir = Matrix_ir

let d = Ir.diagonal "D"
let a = Ir.adjacency "A"
let h = Ir.features "H"
let w = Ir.weight "W"

let gcn_chain = Ir.Mult [ Ir.Leaf d; Ir.Leaf a; Ir.Leaf d; Ir.Leaf h; Ir.Leaf w ]

let test_infer_leaves () =
  check_true "adjacency is sparse" (Ir.is_sparse (Ir.Leaf a));
  check_true "diagonal detected" (Ir.is_diagonal (Ir.Leaf d));
  check_true "features dense" (Ir.is_dense (Ir.Leaf h));
  let (r, c), attr = Ir.infer (Ir.Leaf w) in
  check_true "weight shape" (Dim.equal r Dim.Kin && Dim.equal c Dim.Kout);
  check_true "weight attr" (attr = Ir.Dense Ir.Weight)

let test_infer_chain () =
  let (r, c), attr = Ir.infer gcn_chain in
  check_true "chain shape N x Kout" (Dim.equal r Dim.N && Dim.equal c Dim.Kout);
  check_true "chain with dense elements is dense" (attr = Ir.Dense Ir.Data)

let test_infer_sparse_chain () =
  let (_, _), attr = Ir.infer (Ir.Mult [ Ir.Leaf d; Ir.Leaf a; Ir.Leaf d ]) in
  check_true "normalized adjacency is weighted sparse" (attr = Ir.Sparse Ir.Weighted);
  let (_, _), attr2 = Ir.infer (Ir.Mult [ Ir.Leaf d; Ir.Leaf d ]) in
  check_true "diag . diag is diagonal" (attr2 = Ir.Sparse Ir.Diagonal)

let test_infer_errors () =
  let bad_inner = Ir.Mult [ Ir.Leaf w; Ir.Leaf w ] in
  check_true "inner dim mismatch raises"
    (try ignore (Ir.infer bad_inner); false with Ir.Ill_formed _ -> true);
  check_true "short chain raises"
    (try ignore (Ir.infer (Ir.Mult [ Ir.Leaf h ])); false with Ir.Ill_formed _ -> true);
  check_true "add shape mismatch raises"
    (try ignore (Ir.infer (Ir.Add [ Ir.Leaf h; Ir.Leaf w ])); false
     with Ir.Ill_formed _ -> true);
  check_true "row_broadcast needs a diagonal"
    (try ignore (Ir.infer (Ir.Row_broadcast (Ir.Leaf a, Ir.Leaf h))); false
     with Ir.Ill_formed _ -> true);
  check_true "dense nonlinearity rejects sparse"
    (try ignore (Ir.infer (Ir.Nonlinear (Ir.Relu, Ir.Leaf a))); false
     with Ir.Ill_formed _ -> true)

let test_keys () =
  check_true "identical exprs share a key" (Ir.equal gcn_chain gcn_chain);
  check_true "different exprs differ"
    (not (Ir.equal gcn_chain (Ir.Mult [ Ir.Leaf a; Ir.Leaf h ])))

let test_leaves_order () =
  let names = List.map (fun (l : Ir.leaf) -> l.Ir.name) (Ir.leaves gcn_chain) in
  Alcotest.(check (list string)) "left-to-right with duplicates"
    [ "D"; "A"; "D"; "H"; "W" ] names

let test_flatten () =
  let nested = Ir.Mult [ Ir.Leaf a; Ir.Mult [ Ir.Leaf h; Ir.Leaf w ] ] in
  match Rewrite.flatten nested with
  | Ir.Mult [ Ir.Leaf _; Ir.Leaf _; Ir.Leaf _ ] -> ()
  | e -> Alcotest.failf "expected flat 3-chain, got %s" (Ir.key e)

let test_flatten_singleton () =
  match Rewrite.flatten (Ir.Mult [ Ir.Mult [ Ir.Leaf h; Ir.Leaf w ] ]) with
  | Ir.Mult [ Ir.Leaf _; Ir.Leaf _ ] -> ()
  | e -> Alcotest.failf "singleton chain collapsed wrongly: %s" (Ir.key e)

let test_broadcast_elimination () =
  let e = Ir.Row_broadcast (Ir.Leaf d, Ir.Mult [ Ir.Leaf h; Ir.Leaf w ]) in
  match Rewrite.eliminate_broadcasts e with
  | Ir.Mult [ Ir.Leaf l; Ir.Leaf _; Ir.Leaf _ ] ->
      check_true "diagonal first" (String.equal l.Ir.name "D")
  | e' -> Alcotest.failf "expected 3-chain, got %s" (Ir.key e')

let test_broadcast_elimination_semantics () =
  (* The eliminated form must still infer to the same shape/attr. *)
  let e = Ir.Row_broadcast (Ir.Leaf d, Ir.Leaf h) in
  let s1 = Ir.infer e and s2 = Ir.infer (Rewrite.eliminate_broadcasts e) in
  check_true "shape preserved" (fst s1 = fst s2)

let test_distribute () =
  let e =
    Ir.Mult [ Ir.Add [ Ir.Leaf d; Ir.Leaf a ]; Ir.Leaf h; Ir.Leaf w ]
  in
  let variants = Rewrite.distribute_once e in
  check_int "one distribution site" 1 (List.length variants);
  match variants with
  | [ Ir.Add [ Ir.Mult m1; Ir.Mult m2 ] ] ->
      check_int "term chains keep the tail" 3 (List.length m1);
      check_int "term chains keep the tail (2)" 3 (List.length m2)
  | _ -> Alcotest.fail "unexpected distribution shape"

let test_factor () =
  let e =
    Ir.Add
      [ Ir.Mult [ Ir.Leaf d; Ir.Leaf h ]; Ir.Mult [ Ir.Leaf a; Ir.Leaf h ] ]
  in
  let variants = Rewrite.factor_once e in
  check_true "suffix factoring found" (List.length variants >= 1);
  match List.hd variants with
  | Ir.Mult [ Ir.Add [ Ir.Leaf _; Ir.Leaf _ ]; Ir.Leaf l ] ->
      check_true "common tail factored" (String.equal l.Ir.name "H")
  | e' -> Alcotest.failf "unexpected factoring: %s" (Ir.key e')

let test_distribute_factor_inverse () =
  let e = Ir.Mult [ Ir.Add [ Ir.Leaf d; Ir.Leaf a ]; Ir.Leaf h ] in
  match Rewrite.distribute_once e with
  | [ distributed ] ->
      let back = Rewrite.factor_once distributed in
      check_true "factoring recovers the original"
        (List.exists (Ir.equal e) back)
  | _ -> Alcotest.fail "expected one distribution"

let test_variants_closed_and_unique () =
  let vs = Rewrite.variants gcn_chain in
  check_true "original first" (Ir.equal (List.hd vs) gcn_chain);
  let keys = List.map Ir.key vs in
  check_int "no duplicate variants" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_variants_wellformed =
  (* Every rewrite variant of every model IR must remain well-formed. *)
  Alcotest.test_case "all model variants well-formed" `Quick (fun () ->
      List.iter
        (fun m ->
          let low = Granii_mp.Lower.lower m in
          List.iter
            (fun v -> ignore (Ir.infer v))
            (Rewrite.variants low.Granii_mp.Lower.ir))
        Granii_mp.Mp_models.all)

let suite =
  [ Alcotest.test_case "infer leaves" `Quick test_infer_leaves;
    Alcotest.test_case "infer chain" `Quick test_infer_chain;
    Alcotest.test_case "infer sparse chain" `Quick test_infer_sparse_chain;
    Alcotest.test_case "infer errors" `Quick test_infer_errors;
    Alcotest.test_case "canonical keys" `Quick test_keys;
    Alcotest.test_case "leaves order" `Quick test_leaves_order;
    Alcotest.test_case "flatten" `Quick test_flatten;
    Alcotest.test_case "flatten singleton" `Quick test_flatten_singleton;
    Alcotest.test_case "broadcast elimination" `Quick test_broadcast_elimination;
    Alcotest.test_case "broadcast elimination semantics" `Quick
      test_broadcast_elimination_semantics;
    Alcotest.test_case "distribute" `Quick test_distribute;
    Alcotest.test_case "factor" `Quick test_factor;
    Alcotest.test_case "distribute/factor inverse" `Quick test_distribute_factor_inverse;
    Alcotest.test_case "variants closure" `Quick test_variants_closed_and_unique;
    test_variants_wellformed ]
