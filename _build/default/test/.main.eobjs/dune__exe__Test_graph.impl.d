test/test_graph.ml: Alcotest Array Datasets Float Generators Granii_graph Granii_sparse Graph Graph_features List Sampling String Test_util
