test/test_enumerate.ml: Alcotest Assoc_tree Dim Enumerate Granii_core Granii_mp List Matrix_ir Primitive Prune QCheck2 Test_util
