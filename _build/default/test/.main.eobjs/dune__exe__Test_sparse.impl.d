test/test_sparse.ml: Alcotest Array Coo Csc Csr Float Granii_sparse Granii_tensor Sddmm Semiring Sparse_ops Spmm Test_util Vector
