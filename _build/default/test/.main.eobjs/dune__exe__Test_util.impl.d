test/test_util.ml: Alcotest Array Granii_graph Granii_sparse Granii_tensor QCheck2 QCheck_alcotest String
