test/test_mp_systems.ml: Alcotest Codegen Dim Executor Granii Granii_core Granii_gnn Granii_graph Granii_mp Granii_systems Granii_tensor List Matrix_ir Plan Primitive Printf String Test_util
