test/main.mli:
