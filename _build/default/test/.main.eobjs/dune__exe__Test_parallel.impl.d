test/test_parallel.ml: Alcotest Array Codegen Dim Executor Fun Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_sparse Granii_tensor Lazy List Printf QCheck2 Sys Test_util
