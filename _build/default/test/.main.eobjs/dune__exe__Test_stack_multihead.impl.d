test/test_stack_multihead.ml: Alcotest Array Cost_model Dim Executor Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_tensor Lazy List Plan Printf Test_util
