test/test_ml.ml: Alcotest Array Gbrt Granii_ml Granii_tensor Ml_dataset Ml_metrics Printf QCheck2 Regression_tree Test_util
