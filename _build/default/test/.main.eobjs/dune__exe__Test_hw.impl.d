test/test_hw.ml: Alcotest Array Float Granii_hw Hw_profile Kernel_model List QCheck2 String Test_util Timer
