test/test_tensor.ml: Alcotest Array Dense Float Granii_tensor List Prng QCheck2 Semiring Test_util Vector
