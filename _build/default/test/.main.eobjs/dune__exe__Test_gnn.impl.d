test/test_gnn.ml: Alcotest Array Codegen Dim Executor Float Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_tensor Lazy List Printf String Test_util
