test/test_core_ir.ml: Alcotest Dim Granii_core Granii_mp List Matrix_ir Rewrite String Test_util
