open Granii_ml
open Test_util

let linear_dataset ?(n = 200) ?(noise = 0.) ?(seed = 0) () =
  (* y = 3 x0 - 2 x1 + noise *)
  let rng = Granii_tensor.Prng.create seed in
  let features =
    Array.init n (fun _ ->
        [| Granii_tensor.Prng.uniform rng (-1.) 1.;
           Granii_tensor.Prng.uniform rng (-1.) 1. |])
  in
  let labels =
    Array.map
      (fun x ->
        (3. *. x.(0)) -. (2. *. x.(1))
        +. (noise *. Granii_tensor.Prng.normal rng))
      features
  in
  Ml_dataset.make features labels

let step_dataset () =
  (* y = 1 if x0 > 0.5 else 0: a single split should nail it *)
  let features = Array.init 100 (fun i -> [| float_of_int i /. 100. |]) in
  let labels = Array.map (fun x -> if x.(0) > 0.5 then 1. else 0.) features in
  Ml_dataset.make features labels

let test_dataset_validation () =
  Alcotest.check_raises "ragged rows rejected"
    (Invalid_argument "Ml_dataset.make: ragged feature rows") (fun () ->
      ignore (Ml_dataset.make [| [| 1. |]; [| 1.; 2. |] |] [| 0.; 0. |]));
  Alcotest.check_raises "label mismatch rejected"
    (Invalid_argument "Ml_dataset.make: label count mismatch") (fun () ->
      ignore (Ml_dataset.make [| [| 1. |] |] [| 0.; 1. |]))

let test_dataset_split () =
  let ds = linear_dataset () in
  let train, valid = Ml_dataset.split ~seed:1 ~train_fraction:0.8 ds in
  check_int "sizes add up" (Ml_dataset.n_samples ds)
    (Ml_dataset.n_samples train + Ml_dataset.n_samples valid);
  check_true "both non-empty"
    (Ml_dataset.n_samples train > 0 && Ml_dataset.n_samples valid > 0)

let test_tree_fits_step () =
  let tree = Regression_tree.fit (step_dataset ()) in
  check_true "left of step" (Regression_tree.predict tree [| 0.2 |] < 0.2);
  check_true "right of step" (Regression_tree.predict tree [| 0.9 |] > 0.8);
  check_true "nontrivial tree" (Regression_tree.n_leaves tree >= 2);
  check_true "depth within bound"
    (Regression_tree.depth tree <= Regression_tree.default_params.Regression_tree.max_depth)

let test_tree_constant_labels () =
  let ds = Ml_dataset.make (Array.init 10 (fun i -> [| float_of_int i |])) (Array.make 10 7.) in
  let tree = Regression_tree.fit ds in
  check_int "constant target gives a leaf" 1 (Regression_tree.n_leaves tree);
  check_float "predicts the constant" 7. (Regression_tree.predict tree [| 3. |])

let test_tree_importance () =
  let tree = Regression_tree.fit (step_dataset ()) in
  let fi = Regression_tree.feature_importance tree 1 in
  check_true "split feature has positive gain" (fi.(0) > 0.)

let test_gbrt_fits_linear () =
  let ds = linear_dataset ~n:400 () in
  let model = Gbrt.fit ds in
  let preds = Gbrt.predict_many model ds.Ml_dataset.features in
  let r2 = Ml_metrics.r2 ds.Ml_dataset.labels preds in
  check_true (Printf.sprintf "train r2 > 0.95 (got %.3f)" r2) (r2 > 0.95)

let test_gbrt_generalizes () =
  let ds = linear_dataset ~n:600 ~noise:0.05 ~seed:3 () in
  let train, valid = Ml_dataset.split ~seed:2 ~train_fraction:0.7 ds in
  let model = Gbrt.fit train in
  let preds = Gbrt.predict_many model valid.Ml_dataset.features in
  check_true "validation spearman > 0.9"
    (Ml_metrics.spearman valid.Ml_dataset.labels preds > 0.9)

let test_gbrt_more_trees_help () =
  let ds = linear_dataset ~n:300 ~seed:5 () in
  let fit n_trees =
    let params = { Gbrt.default_params with Gbrt.n_trees; subsample = 1. } in
    let m = Gbrt.fit ~params ds in
    Ml_metrics.rmse ds.Ml_dataset.labels (Gbrt.predict_many m ds.Ml_dataset.features)
  in
  check_true "120 trees beat 5 trees on train RMSE" (fit 120 < fit 5)

let test_gbrt_deterministic () =
  let ds = linear_dataset ~n:100 ~seed:9 () in
  let a = Gbrt.fit ds and b = Gbrt.fit ds in
  let x = [| 0.3; -0.7 |] in
  check_float "same fit twice" (Gbrt.predict a x) (Gbrt.predict b x)

let test_metrics_known_values () =
  let truth = [| 1.; 2.; 3.; 4. |] in
  check_float "rmse of exact prediction" 0. (Ml_metrics.rmse truth truth);
  check_float "r2 of exact prediction" 1. (Ml_metrics.r2 truth truth);
  check_float "spearman of monotone map" 1.
    (Ml_metrics.spearman truth (Array.map (fun x -> x *. x) truth));
  check_float "spearman of reversed order" (-1.)
    (Ml_metrics.spearman truth [| 4.; 3.; 2.; 1. |]);
  check_float "pairwise accuracy of reversed order" 0.
    (Ml_metrics.pairwise_ranking_accuracy truth [| 4.; 3.; 2.; 1. |]);
  check_float "mae" 0.5 (Ml_metrics.mae truth [| 1.5; 2.5; 2.5; 3.5 |])

let test_metrics_ties () =
  check_float "spearman with all-tied predictions is 0" 0.
    (Ml_metrics.spearman [| 1.; 2.; 3. |] [| 5.; 5.; 5. |])

let test_monotone_response =
  (* GBRT fitted to a monotone target should be broadly monotone. *)
  qtest ~count:20 "gbrt roughly monotone on monotone target"
    QCheck2.Gen.(int_range 0 100)
    (fun seed ->
      let rng = Granii_tensor.Prng.create seed in
      let features = Array.init 150 (fun _ -> [| Granii_tensor.Prng.uniform rng 0. 1. |]) in
      let labels = Array.map (fun x -> (2. *. x.(0)) +. 1. ) features in
      let model = Gbrt.fit (Ml_dataset.make features labels) in
      let grid = Array.init 11 (fun i -> [| float_of_int i /. 10. |]) in
      let preds = Gbrt.predict_many model grid in
      Ml_metrics.spearman (Array.map (fun g -> g.(0)) grid) preds > 0.85)

let suite =
  [ Alcotest.test_case "dataset validation" `Quick test_dataset_validation;
    Alcotest.test_case "dataset split" `Quick test_dataset_split;
    Alcotest.test_case "tree fits a step" `Quick test_tree_fits_step;
    Alcotest.test_case "tree on constant labels" `Quick test_tree_constant_labels;
    Alcotest.test_case "tree feature importance" `Quick test_tree_importance;
    Alcotest.test_case "gbrt fits linear data" `Quick test_gbrt_fits_linear;
    Alcotest.test_case "gbrt generalizes" `Quick test_gbrt_generalizes;
    Alcotest.test_case "more trees help" `Quick test_gbrt_more_trees_help;
    Alcotest.test_case "gbrt deterministic" `Quick test_gbrt_deterministic;
    Alcotest.test_case "metric values" `Quick test_metrics_known_values;
    Alcotest.test_case "metric ties" `Quick test_metrics_ties;
    test_monotone_response ]
