(* Figure 1: speedup of increasingly input-aware primitive-ordering
   strategies for GCN over a single static ordering.

     static : one fixed composition and order (dynamic normalization,
              aggregate-first) for every input;
     config : ordering chosen from the model configuration alone, i.e.
              update-first when the embedding shrinks (Yan et al. [17]);
     all    : GRANII — configuration + input-graph aware selection. *)

open Bench_common
module Sys_ = Granii_systems

let run () =
  section "Figure 1: GCN speedup from input-aware primitive reordering";
  Printf.printf "%-4s %-12s %-5s | %8s %8s %8s\n" "G" "(kin,kout)" "hw" "static"
    "config" "all";
  hr ();
  let model = Granii_mp.Mp_models.gcn in
  let sys = Sys_.System.dgl in
  let b = baseline sys model in
  let per_config = ref [] and per_all = ref [] in
  List.iter
    (fun (info, graph) ->
      List.iter
        (fun (k_in, k_out) ->
          List.iter
            (fun profile ->
              let env = env_of graph ~k_in ~k_out in
              (* static: the aggregate-first dynamic composition regardless
                 of configuration (what a no-reorder framework runs) *)
              let static_plan = Sys_.Baseline.plan b ~k_in:32 ~k_out:32 in
              let t_static =
                plan_time ~mode:Inference ~profile ~graph ~env static_plan
              in
              (* config: embedding-size based reordering (the DGL default) *)
              let t_config =
                baseline_time ~mode:Inference ~profile ~sys ~model ~graph ~k_in
                  ~k_out ()
              in
              let t_all =
                granii_time ~mode:Inference ~profile ~sys ~model ~graph ~k_in
                  ~k_out ()
              in
              let s_config = t_static /. t_config and s_all = t_static /. t_all in
              per_config := s_config :: !per_config;
              per_all := s_all :: !per_all;
              Printf.printf "%-4s (%4d,%4d) %-5s | %7.2fx %7.2fx %7.2fx\n"
                info.Granii_graph.Datasets.key k_in k_out
                profile.Granii_hw.Hw_profile.name 1. s_config s_all)
            profiles)
        [ (32, 32); (512, 64); (64, 512); (1024, 1024) ])
    (datasets ());
  hr ();
  Printf.printf "geomean: static 1.00x | config %.2fx | all (GRANII) %.2fx\n"
    (geomean !per_config) (geomean !per_all)
