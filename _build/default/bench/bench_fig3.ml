(* Figure 3 / Section III: the discovered compositions for GCN and GAT with
   their per-operation complexities, regenerated from the enumeration
   itself rather than hard-coded. *)

open Bench_common
open Granii_core

let complexity prim =
  (* symbolic complexity strings matching Fig. 3's N/E/K1/K2 notation *)
  let d dim =
    match dim with
    | Dim.N -> "N"
    | Dim.Kin -> "K1"
    | Dim.Kout -> "K2"
    | Dim.One -> "1"
    | Dim.Const c -> string_of_int c
  in
  match prim with
  | Primitive.Gemm { m; k; n } -> Printf.sprintf "O(%s.%s.%s)" (d m) (d k) (d n)
  | Primitive.Spmm { k; _ } -> Printf.sprintf "O(E.%s)" (d k)
  | Primitive.Dense_sparse_mm { m } -> Printf.sprintf "O(E.%s)" (d m)
  | Primitive.Sddmm_rank1 -> "O(E)"
  | Primitive.Diag_scale _ -> "O(E)"
  | Primitive.Row_broadcast { k } | Primitive.Col_broadcast { k } ->
      Printf.sprintf "O(N.%s)" (d k)
  | Primitive.Diag_combine -> "O(N)"
  | Primitive.Sparse_add _ -> "O(E)"
  | Primitive.Dense_add { k; _ } -> Printf.sprintf "O(N.%s)" (d k)
  | Primitive.Edge_score { k } -> Printf.sprintf "O(N.%s + E)" (d k)
  | Primitive.Edge_softmax -> "O(E)"
  | Primitive.Dense_map { k; _ } -> Printf.sprintf "O(N.%s)" (d k)
  | Primitive.Degree _ -> "O(E)"

let show_model (model : Granii_mp.Mp_ast.model) pick_description =
  Printf.printf "\n%s:\n" model.Granii_mp.Mp_ast.name;
  let _, comp, stats = compiled model ~binned:false in
  Printf.printf
    "  (offline: %d rewrite variants, %d associations enumerated, %d pruned, %d \
     promoted)\n"
    stats.Granii.n_variants stats.Granii.n_enumerated stats.Granii.n_pruned
    stats.Granii.n_promoted;
  List.iteri
    (fun i (c : Codegen.ccand) ->
      if pick_description i c then begin
        Printf.printf "  candidate %s  [%s]\n" c.Codegen.plan.Plan.name
          (String.concat ", "
             (List.map (Format.asprintf "%a" Dim.pp_scenario) c.Codegen.scenarios));
        List.iter
          (fun prim ->
            Printf.printf "      %-22s %s\n"
              (Format.asprintf "%a" Primitive.pp prim)
              (complexity prim))
          (Plan.primitives c.Codegen.plan)
      end)
    comp.Codegen.candidates

let run () =
  section "Figure 3: compositions for GCN and GAT with per-op complexities";
  show_model Granii_mp.Mp_models.gcn (fun _ c ->
      (* show one dynamic-normalization and one precompute candidate *)
      let prims = Plan.primitives c.Codegen.plan in
      let has_sddmm = List.mem Primitive.Sddmm_rank1 prims in
      let pure_dynamic =
        List.for_all
          (function
            | Primitive.Sddmm_rank1 | Primitive.Diag_scale _ -> false
            | _ -> true)
          prims
      in
      has_sddmm || pure_dynamic);
  show_model Granii_mp.Mp_models.gat (fun _ _ -> true)
