(* Table V: GRANII with multiple GNN layers, vs WiseGraph. Each layer's
   composition is selected independently and the decisions are chained
   (Sec. VI-F); speedups stay consistent as depth grows. *)

open Bench_common
module Mp = Granii_mp
module Sys_ = Granii_systems

let profile = Granii_hw.Hw_profile.a100
let sys = Sys_.System.wisegraph

(* Layer widths: feat -> hidden -> ... -> classes. *)
let layer_dims ~feat_dim ~hidden ~classes ~layers =
  let rec go l k_in =
    if l = layers then [ (k_in, classes) ]
    else (k_in, hidden) :: go (l + 1) hidden
  in
  go 1 feat_dim

let stacked_time ~optimized ~model ~graph ~dims =
  List.fold_left
    (fun acc (k_in, k_out) ->
      acc
      +.
      if optimized then
        granii_time ~mode:Inference ~profile ~sys ~model ~graph ~k_in ~k_out ()
      else baseline_time ~mode:Inference ~profile ~sys ~model ~graph ~k_in ~k_out ())
    0. dims

let run () =
  section "Table V: multi-layer GNNs vs WiseGraph (A100, 100 iterations)";
  Printf.printf "%-6s | %8s %8s %8s %8s\n" "Model" "1 layer" "2 layers" "3 layers"
    "4 layers";
  hr ();
  List.iter
    (fun (model : Mp.Mp_ast.model) ->
      Printf.printf "%-6s |" model.Mp.Mp_ast.name;
      List.iter
        (fun layers ->
          let speedups =
            List.map
              (fun (info, graph) ->
                let dims =
                  layer_dims ~feat_dim:info.Granii_graph.Datasets.node_feat_dim
                    ~hidden:256 ~classes:info.Granii_graph.Datasets.n_classes
                    ~layers
                in
                stacked_time ~optimized:false ~model ~graph ~dims
                /. stacked_time ~optimized:true ~model ~graph ~dims)
              (datasets ())
          in
          Printf.printf " %7.2fx" (geomean speedups))
        [ 1; 2; 3; 4 ];
      print_newline ())
    [ Mp.Mp_models.gcn; Mp.Mp_models.gin; Mp.Mp_models.gat ];
  hr ();
  print_endline
    "Expected shape: per-layer decisions chain without losing the speedup as\n\
     depth grows (sparsity does not change across layers, Sec. VI-F)."
