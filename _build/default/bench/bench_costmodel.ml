(* Section VI-G supporting data: accuracy of the learned per-primitive cost
   models on held-out inputs (the evaluation graphs, never seen during
   profiling). Selection only needs the cost ordering to be right, so the
   ranking metrics are the ones that matter. *)

open Bench_common
open Granii_core
module G = Granii_graph

let run () =
  section "Cost-model accuracy on held-out (evaluation) graphs";
  let profile = Granii_hw.Hw_profile.a100 in
  let cm = cost_model profile in
  (* Held-out data: profile the same primitive templates on the evaluation
     graphs, which were excluded from training (Sec. V). *)
  let held_out =
    Profiling.collect ~seed:999
      ~graphs:(List.map snd (datasets ()))
      ~sizes:[ 64; 512; 2048 ] ~profile ()
  in
  Printf.printf "%-14s %8s %10s %10s %10s\n" "primitive" "samples" "rmse(log)"
    "spearman" "pair-acc";
  hr ();
  let models = Cost_model.models cm in
  let all_spearman = ref [] in
  List.iter
    (fun (name, ds) ->
      match List.assoc_opt name models with
      | None -> ()
      | Some gbrt ->
          let preds =
            Granii_ml.Gbrt.predict_many gbrt ds.Granii_ml.Ml_dataset.features
          in
          let truth = ds.Granii_ml.Ml_dataset.labels in
          let rmse = Granii_ml.Ml_metrics.rmse truth preds in
          let rho = Granii_ml.Ml_metrics.spearman truth preds in
          let pacc = Granii_ml.Ml_metrics.pairwise_ranking_accuracy truth preds in
          all_spearman := rho :: !all_spearman;
          Printf.printf "%-14s %8d %10.3f %10.3f %10.3f\n" name
            (Granii_ml.Ml_dataset.n_samples ds)
            rmse rho pacc)
    (List.sort compare held_out);
  hr ();
  Printf.printf "mean held-out spearman: %.3f\n"
    (List.fold_left ( +. ) 0. !all_spearman
    /. float_of_int (List.length !all_spearman))
