(* Table IV: end-to-end two-layer forward-pass times on the H100 profile,
   Reddit and ogbn-products stand-ins, GCN and GAT, varying hidden width.
   Each layer's composition is selected independently (Sec. VI-F); times are
   per forward pass with one-time work (setup, selection, featurization)
   amortized over the paper's 100 iterations. *)

open Bench_common
module Mp = Granii_mp
module Sys_ = Granii_systems

let profile = Granii_hw.Hw_profile.h100

let iterations = 100

let layer_time ~optimized ~sys ~model ~graph ~k_in ~k_out =
  (if optimized then
     granii_time ~mode:Inference ~profile ~sys ~model ~graph ~k_in ~k_out
       ~iterations ()
   else
     baseline_time ~mode:Inference ~profile ~sys ~model ~graph ~k_in ~k_out
       ~iterations ())
  /. float_of_int iterations

let end_to_end ~optimized ~sys ~model ~graph ~feat_dim ~hidden ~classes =
  layer_time ~optimized ~sys ~model ~graph ~k_in:feat_dim ~k_out:hidden
  +. layer_time ~optimized ~sys ~model ~graph ~k_in:hidden ~k_out:classes

let run () =
  section "Table IV: end-to-end 2-layer forward times on H100 (ms)";
  Printf.printf "%-14s %-5s %6s | %10s %10s %8s | %10s %10s %8s\n" "Graph" "GNN"
    "hidden" "Wise" "Wise+GR" "speedup" "DGL" "DGL+GR" "speedup";
  hr ();
  List.iter
    (fun key ->
      let info = Granii_graph.Datasets.find key in
      let graph = Granii_graph.Datasets.load info in
      let feat_dim = info.Granii_graph.Datasets.node_feat_dim in
      let classes = info.Granii_graph.Datasets.n_classes in
      List.iter
        (fun (model : Mp.Mp_ast.model) ->
          List.iter
            (fun hidden ->
              let run4 =
                List.map
                  (fun (sys, optimized) ->
                    end_to_end ~optimized ~sys ~model ~graph ~feat_dim ~hidden
                      ~classes)
                  [ (Sys_.System.wisegraph, false);
                    (Sys_.System.wisegraph, true);
                    (Sys_.System.dgl, false);
                    (Sys_.System.dgl, true) ]
              in
              match run4 with
              | [ w; wg; d; dg ] ->
                  Printf.printf
                    "%-14s %-5s %6d | %9.2f %9.2f %7.2fx | %9.2f %9.2f %7.2fx\n"
                    info.Granii_graph.Datasets.paper_name model.Mp.Mp_ast.name
                    hidden (ms w) (ms wg) (w /. wg) (ms d) (ms dg) (d /. dg)
              | _ -> assert false)
            [ 32; 256; 1024 ])
        [ Mp.Mp_models.gcn; Mp.Mp_models.gat ])
    [ "RD"; "OP" ];
  hr ()
