bench/bench_ext.ml: Array Bench_common Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_tensor List Plan Printf Sys
