bench/bench_common.ml: Codegen Cost_model Dim Featurizer Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_systems Hashtbl List Printf Profiling Selector String
