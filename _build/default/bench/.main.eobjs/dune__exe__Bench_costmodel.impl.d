bench/bench_costmodel.ml: Bench_common Cost_model Granii_core Granii_graph Granii_hw Granii_ml List Printf Profiling
