bench/bench_table5.ml: Bench_common Granii_graph Granii_hw Granii_mp Granii_systems List Printf
