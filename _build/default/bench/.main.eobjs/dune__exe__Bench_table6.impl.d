bench/bench_table6.ml: Assoc_tree Bench_common Codegen Cost_model Granii Granii_core Granii_graph Granii_hw Granii_mp Granii_systems Hashtbl List Option Printf Selector
