bench/bench_real.ml: Bench_common Codegen Dim Executor Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_tensor List Plan Primitive Printf
