bench/bench_fig3.ml: Bench_common Codegen Dim Format Granii Granii_core Granii_mp List Plan Primitive Printf String
