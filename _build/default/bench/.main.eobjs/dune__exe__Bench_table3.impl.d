bench/bench_table3.ml: Bench_common Granii_hw Granii_mp Granii_systems Hashtbl List Option Printf
