bench/bench_fig2.ml: Bench_common Granii_core Granii_graph Granii_hw Granii_mp Granii_systems List Plan Primitive Printf
