bench/main.mli:
