bench/bench_fig9.ml: Array Bench_common Codegen Float Fun Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Hashtbl List Plan Printf Selector
