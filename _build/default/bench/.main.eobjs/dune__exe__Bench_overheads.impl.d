bench/bench_overheads.ml: Bench_common Codegen Dim Enumerate Featurizer Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp List Printf Prune Selector
