bench/bench_micro.ml: Analyze Bechamel Bench_common Benchmark Domain Granii_graph Granii_hw Granii_sparse Granii_tensor Hashtbl Instance List Measure Printf Staged Test Time Toolkit
