(* Figure 8: the per-graph speedup series behind Table III — GRANII's
   speedup over each system, per model, configuration, graph, and hardware.
   Points below 1.0 are mis-selections (the paper reports those too,
   Fig. 8(d)). *)

open Bench_common
module Mp = Granii_mp

let run () =
  section "Figure 8: per-graph GRANII speedups (inference, 100 iterations)";
  List.iter
    (fun sys ->
      let sys_profiles =
        if sys == Granii_systems.System.wisegraph then gpu_profiles else profiles
      in
      List.iter
        (fun profile ->
          List.iter
            (fun (model : Mp.Mp_ast.model) ->
              Printf.printf "\n[%s / %s / %s]\n" sys.Granii_systems.System.sys_name
                profile.Granii_hw.Hw_profile.name model.Mp.Mp_ast.name;
              Printf.printf "%-12s" "(kin,kout)";
              List.iter
                (fun (info, _) ->
                  Printf.printf " %6s" info.Granii_graph.Datasets.key)
                (datasets ());
              print_newline ();
              List.iter
                (fun (k_in, k_out) ->
                  Printf.printf "(%4d,%4d) " k_in k_out;
                  List.iter
                    (fun (_, graph) ->
                      let s =
                        speedup ~mode:Inference ~profile ~sys ~model ~graph ~k_in
                          ~k_out ()
                      in
                      Printf.printf " %5.2f*" s)
                    (datasets ());
                  print_newline ())
                (pairs_for model))
            Mp.Mp_models.paper_five)
        sys_profiles)
    systems
