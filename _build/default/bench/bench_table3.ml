(* Table III: geomean speedups of GRANII across graphs and configurations,
   for 100 iterations, per system x hardware x mode x model. *)

open Bench_common
module Mp = Granii_mp

let cell ~mode ~profile ~sys (model : Mp.Mp_ast.model) =
  let speedups =
    List.concat_map
      (fun (_, graph) ->
        List.map
          (fun (k_in, k_out) ->
            speedup ~mode ~profile ~sys ~model ~graph ~k_in ~k_out ())
          (pairs_for model))
      (datasets ())
  in
  speedups

let run () =
  section
    "Table III: geomean speedups of GRANII across graphs and configurations\n\
     (100 iterations; I = inference, T = training)";
  let models = Mp.Mp_models.paper_five in
  Printf.printf "%-10s %-5s %-4s | %-8s" "System" "HW" "Mode" "Overall";
  List.iter (fun (m : Mp.Mp_ast.model) -> Printf.printf " %8s" m.Mp.Mp_ast.name) models;
  print_newline ();
  hr ();
  let overall = Hashtbl.create 4 in
  List.iter
    (fun sys ->
      let sys_profiles =
        (* the paper evaluates WiseGraph on GPUs only, DGL on GPUs + CPU *)
        if sys == Granii_systems.System.wisegraph then gpu_profiles else profiles
      in
      List.iter
        (fun profile ->
          List.iter
            (fun mode ->
              let per_model =
                List.map (fun m -> (m, cell ~mode ~profile ~sys m)) models
              in
              let all = List.concat_map snd per_model in
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt overall mode)
              in
              Hashtbl.replace overall mode (all @ prev);
              Printf.printf "%-10s %-5s %-4s | %7.2fx"
                sys.Granii_systems.System.sys_name
                profile.Granii_hw.Hw_profile.name (mode_name mode) (geomean all);
              List.iter
                (fun (_, sp) -> Printf.printf " %7.2fx" (geomean sp))
                per_model;
              print_newline ())
            [ Inference; Training ])
        sys_profiles)
    systems;
  hr ();
  List.iter
    (fun mode ->
      Printf.printf "Overall %s: %.2fx   (paper: %s)\n" (mode_name mode)
        (geomean (Option.value ~default:[] (Hashtbl.find_opt overall mode)))
        (match mode with Inference -> "1.56x" | Training -> "1.40x"))
    [ Inference; Training ]
