examples/quickstart.ml: Codegen Cost_model Dim Executor Format Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_tensor Plan Printf Profiling Selector
