examples/hardware_portability.mli:
