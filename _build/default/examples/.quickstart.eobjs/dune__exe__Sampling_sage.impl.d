examples/sampling_sage.ml: Array Codegen Cost_model Dim Featurizer Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_tensor List Plan Printf Profiling Selector String
