examples/fraud_detection.ml: Array Codegen Cost_model Dim Executor Granii Granii_core Granii_gnn Granii_graph Granii_hw Granii_mp Granii_tensor List Plan Primitive Printf Profiling Selector
