examples/hardware_portability.ml: Codegen Cost_model Dim Featurizer Granii Granii_core Granii_graph Granii_hw Granii_mp List Plan Printf Profiling Selector
