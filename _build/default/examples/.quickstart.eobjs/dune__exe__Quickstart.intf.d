examples/quickstart.mli:
