examples/sampling_sage.mli:
